// Package sim is the discrete-time engine that wires the substrates
// together: workloads deposit cycle demand, the scheduler places it on the
// SoC's online cores under the bandwidth quota, the power model integrates
// the rail, the per-cluster thermal network integrates each zone's
// temperature (and may cap its cluster's frequency like msm_thermal), and
// every sampling period the installed policy.Manager observes utilization
// and thermal pressure and reprograms frequency, core count, and quota —
// exactly the control loop a governor lives in on the real device.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mobicore/internal/metrics"
	"mobicore/internal/monsoon"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/sched"
	"mobicore/internal/soc"
	"mobicore/internal/thermal"
	"mobicore/internal/workload"
)

// Config assembles one simulation.
type Config struct {
	// Platform selects the device profile; required.
	Platform platform.Platform
	// Manager is the CPU management policy under test; required.
	Manager policy.Manager
	// Workloads generate demand; at least one is required.
	Workloads []workload.Workload

	// Tick is the integration step (default 1 ms).
	Tick time.Duration
	// SamplePeriod is how often the Manager runs (default 50 ms).
	SamplePeriod time.Duration
	// Seed drives all workload randomness; runs with equal seeds and
	// configs produce identical traces.
	Seed int64

	// Placer selects the scheduler's placement rule: "greedy" (default)
	// or "eas" (energy-aware placement driven by the platform's energy
	// model). On homogeneous platforms the two produce identical
	// placements; the greedy remains the default everywhere so existing
	// sessions reproduce bit for bit.
	Placer string

	// PowerTrace, when non-nil, receives every integration tick's power
	// sample before the tick commits: the tick's start time, its length,
	// the total system watts, and each cluster's share (cores + uncore,
	// platform floor excluded), indexed like the platform's ClusterSpecs.
	// The cluster slice is scratch reused between ticks — callers that
	// retain samples must copy it. Integrating systemW·dt over a session
	// reproduces the report's EnergyJ exactly.
	PowerTrace func(now, dt time.Duration, systemW float64, clusterW []float64)

	// InitialFreq is the boot frequency (default: table max, as the
	// kernel boots before a governor takes over). Must be an OPP.
	InitialFreq soc.Hz
	// InitialCores is the boot online count (default: all).
	InitialCores int
	// InitialQuota is the boot bandwidth (default 1).
	InitialQuota float64

	// Monitor configures the power meter (default monsoon.DefaultConfig).
	Monitor monsoon.Config

	// NoFuse disables the quiescent-tick fast path, forcing every tick
	// through the full scheduling and integration pipeline. Output is
	// byte-identical either way — the fast path replays a retained window
	// only when it can prove the slow path would reproduce it bit for bit
	// — so the knob exists for equivalence tests and debugging, not
	// correctness. Harnesses that drive Step directly and mutate the CPU
	// between ticks must set it (the engine cannot observe out-of-band
	// frequency or hotplug changes).
	NoFuse bool
}

func (c *Config) fillDefaults() error {
	if err := c.Platform.Validate(); err != nil {
		return err
	}
	if c.Manager == nil {
		return errors.New("sim: config needs a policy manager")
	}
	if len(c.Workloads) == 0 {
		return errors.New("sim: config needs at least one workload")
	}
	if c.Tick == 0 {
		c.Tick = time.Millisecond
	}
	if c.Tick <= 0 {
		return errors.New("sim: tick must be positive")
	}
	if c.SamplePeriod == 0 {
		c.SamplePeriod = 50 * time.Millisecond
	}
	if c.SamplePeriod < c.Tick {
		return errors.New("sim: sample period must be >= tick")
	}
	if c.Platform.Heterogeneous() {
		// Each cluster boots at its own table maximum; a single initial
		// frequency cannot name an operating point in every domain.
		if c.InitialFreq != 0 {
			return errors.New("sim: InitialFreq is per-cluster on heterogeneous platforms; leave it 0")
		}
	} else {
		if c.InitialFreq == 0 {
			c.InitialFreq = c.Platform.Table.Max().Freq
		}
		if !c.Platform.Table.Contains(c.InitialFreq) {
			return fmt.Errorf("sim: initial frequency %v is not an operating point", c.InitialFreq)
		}
	}
	if c.InitialCores == 0 {
		c.InitialCores = c.Platform.NumCores
	}
	if c.InitialCores < 1 || c.InitialCores > c.Platform.NumCores {
		return fmt.Errorf("sim: initial cores %d outside [1,%d]", c.InitialCores, c.Platform.NumCores)
	}
	if c.InitialQuota == 0 {
		c.InitialQuota = 1
	}
	if c.InitialQuota <= 0 || c.InitialQuota > 1 {
		return errors.New("sim: initial quota must be in (0,1]")
	}
	if c.Monitor.SampleEvery == 0 {
		c.Monitor = monsoon.DefaultConfig()
	}
	switch c.Placer {
	case "":
		c.Placer = PlacerGreedy
	case PlacerGreedy, PlacerEAS:
	default:
		return fmt.Errorf("sim: unknown placer %q (want %q or %q)", c.Placer, PlacerGreedy, PlacerEAS)
	}
	return nil
}

// Placer names accepted by Config.Placer.
const (
	// PlacerGreedy is the original LITTLE-first most-budget greedy.
	PlacerGreedy = "greedy"
	// PlacerEAS is find_energy_efficient_cpu-style energy-aware placement
	// backed by the platform's energy model.
	PlacerEAS = "eas"
)

// Sim is one running simulation. Not safe for concurrent use.
type Sim struct {
	cfg   Config
	cpu   *soc.CPU
	model *power.SystemModel
	net   *thermal.Network
	sch   sched.Scheduler
	rng   *rand.Rand
	mon   *monsoon.Monitor

	views       []policy.ClusterView // per-cluster tables + core ids, built once
	coreCluster []int                // core id -> cluster index (shared from the platform precompute)

	now       time.Duration
	quota     float64
	quotaPool float64  // shared bandwidth pool (seconds) remaining this period
	requested []soc.Hz // manager-requested per-core frequency, pre thermal clamp
	applied   []soc.Hz // mirror of each core's programmed frequency, so the per-tick re-clamp skips locked CPU reads
	capGen    uint64   // thermal cap generation at the last re-clamp; the per-tick re-clamp runs only when a cap moved
	prGen     uint64   // thermal cap generation of the cached pressure view (capped/capScale)

	// quiescent-tick fast path: the ring of retained scheduling windows
	// and, slot for slot, the memoized integration-tail scalars each fuses
	// with. The memo proves the thread-side inputs unchanged
	// (sched.Memo.Match); fast[i].valid vouches for the CPU-side inputs of
	// slot i — every slot is cleared whenever applyFrequencies reprograms
	// a core and on every policy decision (hotplug, frequency, quota),
	// trusting the applied-frequency mirror in between, and only the tick
	// that records a slot re-validates it.
	memo      sched.Memo
	fast      [sched.MemoRing]fastState
	satRate   float64                 // saturation ceiling (cycles/sec): the platform's top ladder frequency
	hinters   []workload.SteadyHinter // cached SteadyHint views of cfg.Workloads (nil where unimplemented)
	fastTicks uint64                  // ticks served by the fast path this session

	// per-tick scratch, reused to keep the hot loop allocation-free
	snap         []soc.CoreSnapshot // CPU snapshot buffer
	util         []float64          // per-core utilization buffer
	busySec      []float64          // per-core busy-seconds buffer handed to the scheduler
	clusterWatts []float64          // per-cluster power share from the system model
	zoneWatts    []float64          // per-zone watts fed to the thermal network
	capped       []bool             // per-core thermal-cap flags for the scheduler
	capScale     []float64          // per-core headroom-aware capacity scale
	clusterFmax  []float64          // per-cluster ladder top (shared from the platform precompute)
	threads      []*sched.Thread    // demand gathered from workloads this tick
	loads        []power.CoreLoad   // per-core load view fed to the power model

	// per-sample scratch for the policy input, reused because managers
	// must not retain Input slices past Decide
	inUtil    []float64
	inOnline  []bool
	inCurFreq []soc.Hz
	inThermal []policy.ThermalSignal
	clFreq    []float64
	clOnline  []int

	// window accumulators between manager samples
	winBusySec []float64
	winElapsed time.Duration
	lastSample time.Duration

	// run-wide accounting
	freqSum      metrics.Summary // avg online-core frequency, tick-weighted
	coreSum      metrics.Summary // online core count
	utilSum      metrics.Summary // overall (online-core average) utilization
	quotaSum     metrics.Summary
	tempSum      metrics.Summary // hottest-zone temperature, tick-weighted
	executed     float64
	throttledSec float64 // quota-denied core time
	thermalSec   float64 // Σ per-cluster capped time (aggregate residency)

	clusterFreqSum    []metrics.Summary // per-cluster avg online frequency, sampled
	clusterCoreSum    []metrics.Summary // per-cluster online count, sampled
	clusterTempSum    []metrics.Summary // per-cluster zone temperature, tick-weighted
	clusterThermalSec []float64         // per-cluster capped residency (seconds)
	clusterEnergyJ    []float64         // per-cluster energy attribution (joules)

	freqSeries  metrics.Series
	coreSeries  metrics.Series
	utilSeries  metrics.Series
	quotaSeries metrics.Series
	tempSeries  metrics.Series

	clusterFreqSeries   []metrics.Series
	clusterCoreSeries   []metrics.Series
	clusterTempSeries   []metrics.Series
	clusterEnergySeries []metrics.Series // cumulative per-cluster joules, sampled
}

// fastState is the memoized integration tail of one retained tick: every
// scalar the slow path derives from the scheduling result before feeding the
// power model, captured once on the recording tick and replayed while the
// window stays quiescent. Replay adds the same float values in the same
// order as the slow path, so accumulators stay bit-identical. The Sim keeps
// one fastState per memo ring slot, captured on the same tick that recorded
// the slot.
type fastState struct {
	valid   bool
	watts   float64   // total system watts of the retained tick
	base    float64   // platform floor share of watts
	per     []float64 // per-cluster watts (copy — clusterWatts is scratch)
	winInc  []float64 // per-core winBusySec increment (0 for offline cores)
	online  int       // online core count
	avgFreq float64   // online-average frequency added to freqSum
	avgUtil float64   // online-average utilization added to utilSum
}

// fastRing resizes each fast-path slot's buffers to the session topology,
// keeping accumulated capacity, with every slot invalid.
func fastRing(old [sched.MemoRing]fastState, nc, n int) [sched.MemoRing]fastState {
	var ring [sched.MemoRing]fastState
	for i := range ring {
		ring[i] = fastState{per: f64Buf(old[i].per, nc), winInc: f64Buf(old[i].winInc, n)}
	}
	return ring
}

// invalidateFast clears the CPU-side vouch of every fast-path slot: retained
// windows stop replaying until a fresh recording revalidates its slot.
//
//mobicore:hotpath
func (s *Sim) invalidateFast() {
	for i := range s.fast {
		s.fast[i].valid = false
	}
}

// New builds a simulation from cfg with freshly allocated buffers.
func New(cfg Config) (*Sim, error) {
	return newSim(cfg, nil)
}

// NewInArena is New drawing every reusable buffer from the arena instead of
// the heap — the fleet driver's cross-cell fast path. See Arena for the
// ownership contract. A nil arena reproduces New exactly.
func NewInArena(cfg Config, a *Arena) (*Sim, error) {
	return newSim(cfg, a)
}

// newSim assembles a simulation, reusing the arena's buffers when one is
// provided. Construction consumes the platform's process-wide precompute
// (platform.Compiled): the per-cluster power models, energy model, thermal
// parameters, boot ladder, and core→cluster mapping are shared immutable
// state, so only the genuinely per-session pieces (the CPU, the thermal
// zones' integration state, the system model's evaluation scratch) are
// built here.
func newSim(cfg Config, a *Arena) (*Sim, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	comp, err := cfg.Platform.Compiled()
	if err != nil {
		return nil, err
	}
	cpu, err := comp.NewCPU()
	if err != nil {
		return nil, fmt.Errorf("sim: building CPU: %w", err)
	}
	model, err := comp.NewSystemModel()
	if err != nil {
		return nil, fmt.Errorf("sim: building power model: %w", err)
	}
	net, err := comp.NewThermalNetwork()
	if err != nil {
		return nil, fmt.Errorf("sim: building thermal network: %w", err)
	}

	s := &Sim{}
	if a != nil {
		s = a.take()
	}
	// Reusable state captured before the wholesale reset below: the
	// monitor keeps its trace buffer, the scheduler its window scratch,
	// the series their point buffers (each reset to length zero).
	mon := s.mon
	if mon != nil {
		if err := mon.Reuse(cfg.Monitor); err != nil {
			return nil, fmt.Errorf("sim: reusing monitor: %w", err)
		}
	} else {
		mon, err = monsoon.New(cfg.Monitor)
		if err != nil {
			return nil, fmt.Errorf("sim: building monitor: %w", err)
		}
	}
	sch := s.sch
	sch.Placer = nil

	n := cfg.Platform.NumCores
	nc := len(comp.Specs)
	views := viewsBuf(s.views, nc)
	for ci, cs := range comp.Specs {
		views[ci] = policy.ClusterView{Name: cs.Name, Table: cs.Table, CoreIDs: comp.ClusterCoreIDs[ci]}
	}
	agg := [5]metrics.Series{s.freqSeries, s.coreSeries, s.utilSeries, s.quotaSeries, s.tempSeries}
	for i := range agg {
		agg[i].Reset()
	}

	// Saturation ceiling for the scheduling memo: no core anywhere on the
	// platform grants more than ladder-top × dt cycles per tick, so demand
	// above that threshold drives every placement comparison identically
	// regardless of its exact magnitude.
	var satRate float64
	for _, fmax := range comp.ClusterFmaxHz {
		if fmax > satRate {
			satRate = fmax
		}
	}
	hinters := hinterBuf(s.hinters, len(cfg.Workloads))
	for i, w := range cfg.Workloads {
		h, _ := w.(workload.SteadyHinter)
		hinters[i] = h
	}

	// Every field of the Sim is assigned here; buffers resize to the
	// session's topology keeping whatever capacity the arena accumulated.
	// A field added to Sim must be (re)initialized in this literal or it
	// will leak state between arena cells.
	*s = Sim{
		cfg:         cfg,
		cpu:         cpu,
		model:       model,
		net:         net,
		sch:         sch,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		mon:         mon,
		views:       views,
		coreCluster: comp.CoreCluster,
		quota:       cfg.InitialQuota,
		requested:   hzBuf(s.requested, n),
		applied:     hzBuf(s.applied, n),
		prGen:       ^uint64(0), // force the first tick to build the pressure view

		memo:                s.memo.Recycle(),
		fast:                fastRing(s.fast, nc, n),
		satRate:             satRate,
		hinters:             hinters,
		snap:                snapBuf(s.snap, n),
		util:                f64Buf(s.util, n),
		busySec:             f64Buf(s.busySec, n),
		clusterWatts:        f64Buf(s.clusterWatts, nc),
		zoneWatts:           f64Buf(s.zoneWatts, nc),
		capped:              boolBuf(s.capped, n),
		capScale:            f64Buf(s.capScale, n),
		clusterFmax:         comp.ClusterFmaxHz,
		threads:             s.threads[:0],
		loads:               loadBuf(s.loads, n),
		inUtil:              f64Buf(s.inUtil, n),
		inOnline:            boolBuf(s.inOnline, n),
		inCurFreq:           hzBuf(s.inCurFreq, n),
		inThermal:           thermalBuf(s.inThermal, nc),
		clFreq:              f64Buf(s.clFreq, nc),
		clOnline:            intBuf(s.clOnline, nc),
		winBusySec:          f64Buf(s.winBusySec, n),
		clusterFreqSum:      sumBuf(s.clusterFreqSum, nc),
		clusterCoreSum:      sumBuf(s.clusterCoreSum, nc),
		clusterTempSum:      sumBuf(s.clusterTempSum, nc),
		clusterThermalSec:   f64Buf(s.clusterThermalSec, nc),
		clusterEnergyJ:      f64Buf(s.clusterEnergyJ, nc),
		freqSeries:          agg[0],
		coreSeries:          agg[1],
		utilSeries:          agg[2],
		quotaSeries:         agg[3],
		tempSeries:          agg[4],
		clusterFreqSeries:   seriesBuf(s.clusterFreqSeries, nc),
		clusterCoreSeries:   seriesBuf(s.clusterCoreSeries, nc),
		clusterTempSeries:   seriesBuf(s.clusterTempSeries, nc),
		clusterEnergySeries: seriesBuf(s.clusterEnergySeries, nc),
	}
	if cfg.Placer == PlacerEAS {
		placer, err := sched.NewEASPlacer(comp.EM)
		if err != nil {
			return nil, fmt.Errorf("sim: building EAS placer: %w", err)
		}
		s.sch.Placer = placer
	}
	s.refillQuota()
	if err := cpu.SetOnlineCount(cfg.InitialCores); err != nil {
		return nil, fmt.Errorf("sim: initial hotplug: %w", err)
	}
	// Boot frequency: the configured operating point on homogeneous
	// platforms, each cluster's own maximum on heterogeneous ones (the
	// kernel boots every policy domain at its top bin before a governor
	// takes over).
	for ci, v := range views {
		boot := cfg.InitialFreq
		if cfg.Platform.Heterogeneous() || boot == 0 {
			boot = comp.BootFreqs[ci]
		}
		if err := cpu.SetClusterFreq(ci, boot); err != nil {
			return nil, fmt.Errorf("sim: initial frequency: %w", err)
		}
		for _, id := range v.CoreIDs {
			s.requested[id] = boot
		}
	}
	// Seed the programmed-frequency mirror from the booted CPU, so the
	// per-tick re-clamp can compare against it without locking the CPU.
	s.snap = s.cpu.SnapshotInto(s.snap)
	for i, c := range s.snap {
		s.applied[i] = c.Freq
	}
	return s, nil
}

// reserve preallocates the sampled series and the monitor trace for a
// session of duration d, so steady-state execution appends without growth
// reallocation. A non-positive d (open-ended sessions) reserves nothing.
func (s *Sim) reserve(d time.Duration) {
	if d <= 0 {
		return
	}
	// One sample per period plus slack for the final partial window.
	samples := int(d/s.cfg.SamplePeriod) + 2
	for _, ser := range []*metrics.Series{&s.freqSeries, &s.coreSeries, &s.utilSeries, &s.quotaSeries, &s.tempSeries} {
		ser.Reserve(samples)
	}
	for _, group := range [][]metrics.Series{s.clusterFreqSeries, s.clusterCoreSeries, s.clusterTempSeries, s.clusterEnergySeries} {
		for i := range group {
			group[i].Reserve(samples)
		}
	}
	if s.cfg.Monitor.SampleEvery > 0 {
		s.mon.Reserve(int(d/s.cfg.Monitor.SampleEvery) + 2)
	}
}

// Reserve preallocates the sampled series and the monitor trace for a run
// of duration d, so steady-state stepping appends without growth. Sessions
// built through SessionSpec.NewIn reserve automatically; direct users that
// drive Step in a loop (benchmark harnesses, custom drivers) call this once
// up front to keep series growth out of the measured path.
func (s *Sim) Reserve(d time.Duration) { s.reserve(d) }

// Now returns the current simulation time.
func (s *Sim) Now() time.Duration { return s.now }

// CPU exposes the simulated processor (read-mostly; experiments inspect it).
func (s *Sim) CPU() *soc.CPU { return s.cpu }

// Quota returns the currently programmed bandwidth.
func (s *Sim) Quota() float64 { return s.quota }

// Step advances the simulation by one tick.
//
//mobicore:hotpath
func (s *Sim) Step() error {
	dt := s.cfg.Tick
	dts := dt.Seconds()

	// 1. Demand generation. The thread slice is per-tick scratch — the
	// scheduler never retains it past the call. Workloads that implement
	// SteadyHint vouch that this Tick changed no demand; when every
	// workload does, the quiescence check can skip the per-thread
	// set-membership scan.
	threads := s.threads[:0]
	steady := true
	for wi, w := range s.cfg.Workloads {
		w.Tick(s.now, dt, s.rng)
		if h := s.hinters[wi]; h == nil || !h.SteadyHint() {
			steady = false
		}
		//mobilint:ignore append into pooled scratch; capacity amortizes across ticks
		threads = append(threads, w.Threads()...)
	}
	s.threads = threads

	// 2. Scheduling and execution under the remaining bandwidth pool
	// (CFS group-quota semantics: full speed until the period's shared
	// budget drains). The scheduler sees which clusters are thermally
	// capped — and how deep each cap sits relative to the ladder top —
	// so placement steers backlog toward the cool ones with
	// headroom-aware capacity.
	if g := s.net.CapGen(); g != s.prGen {
		s.prGen = g
		for i, ci := range s.coreCluster {
			throttling := s.net.Throttling(ci)
			s.capped[i] = throttling
			if throttling && s.clusterFmax[ci] > 0 {
				s.capScale[i] = float64(s.net.CapFreq(ci)) / s.clusterFmax[ci]
			} else {
				s.capScale[i] = 1
			}
		}
	}
	pool := sched.Unlimited
	if s.quota < 1 {
		pool = s.quotaPool
	}
	// The +1 keeps the tag nonzero (zero means untagged): a fresh network's
	// cap generation starts at 0, and equality is all the tag carries.
	pr := sched.Pressure{Capped: s.capped, CapScale: s.capScale, Gen: s.prGen + 1}

	// Quiescent fast path: when a retained window provably reproduces
	// this tick's scheduling decision and its CPU-side inputs are vouched
	// unchanged, replay it and fuse the memoized integration tail.
	if idx := s.memo.Match(threads, steady, pool, pr); idx >= 0 && s.fast[idx].valid {
		return s.stepFast(dt, idx)
	}

	rec := &s.memo
	if s.cfg.NoFuse {
		rec = nil
	}
	res, err := s.sch.ScheduleRecordInto(rec, s.satRate, s.busySec, s.snap, s.cpu, threads, dt, pool, pr)
	if err != nil {
		return fmt.Errorf("sim: scheduling at %v: %w", s.now, err)
	}
	s.busySec = res.BusySeconds
	s.executed += res.ExecutedCycles
	s.throttledSec += res.ThrottledSeconds
	s.quotaPool -= res.PoolUsedSec
	if s.quotaPool < 0 {
		s.quotaPool = 0
	}

	// 3. Power and thermal integration. The load and snapshot slices are
	// fixed-size scratch; every entry is rewritten below. When the
	// scheduler armed the memo, capture the integration tail alongside so
	// replay ticks skip the snapshot/load/model evaluation entirely.
	recording := rec != nil && s.memo.Armed()
	var f *fastState
	if recording {
		f = &s.fast[s.memo.ArmedSlot()]
	}
	// The snapshot mirror is current: the scheduler wrote each online
	// core's post-run Active/Idle state into it, and frequencies/online
	// masks only move through applyFrequencies and samplePolicy, which
	// both refresh it — so no locked snapshot is needed here.
	snap := s.snap
	loads := s.loads
	util := res.UtilizationInto(s.util, dt)
	s.util = util
	onlineCount := 0
	var freqAcc float64
	var overall float64
	for i, c := range snap {
		loads[i] = power.CoreLoad{
			State: c.State,
			OPP:   soc.OPP{Freq: c.Freq, Volt: c.Volt},
			Util:  util[i],
		}
		if recording {
			f.winInc[i] = 0
		}
		if c.State != soc.StateOffline {
			onlineCount++
			freqAcc += float64(c.Freq)
			overall += util[i]
			inc := util[i] * dts
			s.winBusySec[i] += inc
			if recording {
				f.winInc[i] = inc
			}
		}
	}
	base, per := s.model.SystemWattsByCluster(loads, s.clusterWatts)
	watts := base
	for _, w := range per {
		watts += w
	}
	if recording {
		f.watts, f.base = watts, base
		copy(f.per, per)
		f.online = onlineCount
		f.avgFreq, f.avgUtil = 0, 0
		f.valid = true
	}
	if err := s.mon.Observe(s.now, watts, dt); err != nil {
		return fmt.Errorf("sim: power observation: %w", err)
	}
	if s.cfg.PowerTrace != nil {
		s.cfg.PowerTrace(s.now, dt, watts, per)
	}
	// Each zone integrates its own cluster's share plus an even split of
	// the platform floor; the network adds the shared-die coupling. The
	// cluster's own share (cores + uncore, floor excluded) also feeds the
	// per-cluster energy attribution the report exposes.
	floorShare := base / float64(len(per))
	for ci := range per {
		s.zoneWatts[ci] = per[ci] + floorShare
		s.clusterEnergyJ[ci] += per[ci] * dts
	}
	if err := s.net.Step(s.zoneWatts, dt); err != nil {
		return fmt.Errorf("sim: thermal integration: %w", err)
	}
	for ci := range per {
		if s.net.Throttling(ci) {
			s.clusterThermalSec[ci] += dts
			s.thermalSec += dts
		}
		s.clusterTempSum[ci].Add(s.net.TempC(ci))
	}
	// Thermal driver acts between governor samples: re-clamp requests,
	// needed only on the rare tick where a zone's cap actually moved.
	if s.net.CapGen() != s.capGen {
		if err := s.applyFrequencies(); err != nil {
			return err
		}
	}

	// Run-wide accounting (tick-weighted). The online averages are
	// computed once and shared with the memo so replay ticks add the
	// bit-identical values.
	if onlineCount > 0 {
		avgF := freqAcc / float64(onlineCount)
		avgU := overall / float64(onlineCount)
		s.freqSum.Add(avgF)
		s.utilSum.Add(avgU)
		if recording {
			f.avgFreq, f.avgUtil = avgF, avgU
		}
	}
	s.coreSum.Add(float64(onlineCount))
	s.quotaSum.Add(s.quota)
	s.tempSum.Add(s.net.MaxTempC())

	s.now += dt
	s.winElapsed += dt

	// 4. Policy sampling.
	if s.now-s.lastSample >= s.cfg.SamplePeriod {
		if err := s.samplePolicy(); err != nil {
			return err
		}
	}
	return nil
}

// stepFast commits one quiescent tick: the retained scheduling window in
// ring slot idx replays onto the threads and CPU (exact cycle accounting
// included), and its memoized integration tail feeds the same power,
// thermal, residency, and accounting updates the slow path would compute —
// the same float values added in the same order, so every accumulator,
// series, trace, and downstream report byte stays identical.
//
//mobicore:hotpath
func (s *Sim) stepFast(dt time.Duration, idx int) error {
	res, err := s.memo.ReplayInto(idx, s.busySec, s.cpu, dt)
	if err != nil {
		return fmt.Errorf("sim: scheduling at %v: %w", s.now, err)
	}
	s.busySec = res.BusySeconds
	s.executed += res.ExecutedCycles
	s.throttledSec += res.ThrottledSeconds
	s.quotaPool -= res.PoolUsedSec
	if s.quotaPool < 0 {
		s.quotaPool = 0
	}

	f := &s.fast[idx]
	watts, base, per := f.watts, f.base, f.per
	if err := s.mon.Observe(s.now, watts, dt); err != nil {
		return fmt.Errorf("sim: power observation: %w", err)
	}
	if s.cfg.PowerTrace != nil {
		s.cfg.PowerTrace(s.now, dt, watts, per)
	}
	floorShare := base / float64(len(per))
	dts := dt.Seconds()
	for ci := range per {
		s.zoneWatts[ci] = per[ci] + floorShare
		s.clusterEnergyJ[ci] += per[ci] * dts
	}
	if err := s.net.Step(s.zoneWatts, dt); err != nil {
		return fmt.Errorf("sim: thermal integration: %w", err)
	}
	for ci := range per {
		if s.net.Throttling(ci) {
			s.clusterThermalSec[ci] += dts
			s.thermalSec += dts
		}
		s.clusterTempSum[ci].Add(s.net.TempC(ci))
	}
	if s.net.CapGen() != s.capGen {
		if err := s.applyFrequencies(); err != nil {
			return err
		}
	}

	for i, inc := range f.winInc {
		s.winBusySec[i] += inc
	}
	if f.online > 0 {
		s.freqSum.Add(f.avgFreq)
		s.utilSum.Add(f.avgUtil)
	}
	s.coreSum.Add(float64(f.online))
	s.quotaSum.Add(s.quota)
	s.tempSum.Add(s.net.MaxTempC())

	s.now += dt
	s.winElapsed += dt
	s.fastTicks++

	if s.now-s.lastSample >= s.cfg.SamplePeriod {
		if err := s.samplePolicy(); err != nil {
			return err
		}
	}
	return nil
}

// FastTicks reports how many ticks the quiescent fast path has served this
// session — an observability hook for tests and benchmarks asserting the
// path engages (it never changes simulation output).
func (s *Sim) FastTicks() uint64 { return s.fastTicks }

// samplePolicy runs the manager against the accumulated window and applies
// its decision. The Input slices are the sim's pooled per-sample scratch:
// managers receive them for the duration of Decide only and must not retain
// them (Input.Slice copies, and every in-tree manager reduces the window to
// scalars).
func (s *Sim) samplePolicy() error {
	period := s.now - s.lastSample
	s.lastSample = s.now

	// The snapshot mirror is current on every field the policy input reads
	// (online state and programmed frequency — refreshed on every
	// reprogram, hotplug, and slow tick), so no locked snapshot is needed
	// before the decision.
	snap := s.snap
	in := policy.Input{
		Now:      s.now,
		Period:   period,
		Util:     f64Buf(s.inUtil, len(snap)),
		Online:   boolBuf(s.inOnline, len(snap)),
		CurFreq:  hzBuf(s.inCurFreq, len(snap)),
		Quota:    s.quota,
		Table:    s.cfg.Platform.Table,
		Clusters: s.views,
		Thermal:  thermalBuf(s.inThermal, len(s.views)),
	}
	s.inUtil, s.inOnline, s.inCurFreq, s.inThermal = in.Util, in.Online, in.CurFreq, in.Thermal
	for ci := range s.views {
		in.Thermal[ci] = policy.ThermalSignal{
			TempC:      s.net.TempC(ci),
			HeadroomC:  s.net.HeadroomC(ci),
			Throttling: s.net.Throttling(ci),
			CapFreq:    s.net.CapFreq(ci),
		}
	}
	winSec := s.winElapsed.Seconds()
	for i, c := range snap {
		in.Online[i] = c.State != soc.StateOffline
		in.CurFreq[i] = c.Freq
		if winSec > 0 && in.Online[i] {
			u := s.winBusySec[i] / winSec
			if u > 1 {
				u = 1
			}
			in.Util[i] = u
		}
	}

	dec, err := s.cfg.Manager.Decide(in)
	if err != nil {
		return fmt.Errorf("sim: policy %s at %v: %w", s.cfg.Manager.Name(), s.now, err)
	}
	if err := dec.ValidateClustered(s.views, len(snap)); err != nil {
		return fmt.Errorf("sim: policy %s produced invalid decision: %w", s.cfg.Manager.Name(), err)
	}

	if dec.OnlineVec != nil {
		// Online-increasing clusters first: a valid vector may migrate
		// every core to another cluster (e.g. [0,4] while only cluster 0
		// is up), and shrinking first would momentarily leave the SoC
		// with no online core, which soc rejects.
		for _, grow := range []bool{true, false} {
			for ci, n := range dec.OnlineVec {
				cur, err := s.cpu.ClusterOnlineCount(ci)
				if err != nil {
					return fmt.Errorf("sim: reading cluster %d online count: %w", ci, err)
				}
				if (n > cur) != grow {
					continue
				}
				if err := s.cpu.SetClusterOnlineCount(ci, n); err != nil {
					return fmt.Errorf("sim: applying cluster %d hotplug decision: %w", ci, err)
				}
			}
		}
	} else if err := s.cpu.SetOnlineCount(dec.OnlineCores); err != nil {
		return fmt.Errorf("sim: applying hotplug decision: %w", err)
	}
	copy(s.requested, dec.TargetFreq)
	if err := s.applyFrequencies(); err != nil {
		return err
	}
	s.quota = dec.Quota
	s.refillQuota()

	// Record the sampled series, aggregate and per-cluster.
	snap = s.cpu.SnapshotInto(s.snap)
	s.snap = snap
	// A decision that actually moved a core's online state changes the
	// scheduling capacity and power inputs outside what the memo
	// fingerprints: drop every retained window. Frequency moves already
	// invalidated the CPU-side vouch inside applyFrequencies, and the
	// quota/pool refill is a per-tick Match input — so a no-op decision
	// (the steady-state common case) keeps the ring armed straight across
	// the sample boundary.
	for i, c := range snap {
		if (c.State != soc.StateOffline) != in.Online[i] {
			s.invalidateFast()
			s.memo.Invalidate()
			break
		}
	}
	var freqAcc float64
	online := 0
	clFreq := f64Buf(s.clFreq, len(s.views))
	clOnline := intBuf(s.clOnline, len(s.views))
	s.clFreq, s.clOnline = clFreq, clOnline
	for _, c := range snap {
		if c.State != soc.StateOffline {
			freqAcc += float64(c.Freq)
			online++
			clFreq[c.Cluster] += float64(c.Freq)
			clOnline[c.Cluster]++
		}
	}
	if online > 0 {
		s.freqSeries.Append(s.now, freqAcc/float64(online))
	}
	s.coreSeries.Append(s.now, float64(online))
	s.utilSeries.Append(s.now, in.OverallUtil())
	s.quotaSeries.Append(s.now, s.quota)
	s.tempSeries.Append(s.now, s.net.MaxTempC())
	for ci := range s.views {
		avg := 0.0
		if clOnline[ci] > 0 {
			avg = clFreq[ci] / float64(clOnline[ci])
		}
		s.clusterFreqSeries[ci].Append(s.now, avg)
		s.clusterCoreSeries[ci].Append(s.now, float64(clOnline[ci]))
		s.clusterTempSeries[ci].Append(s.now, s.net.TempC(ci))
		s.clusterEnergySeries[ci].Append(s.now, s.clusterEnergyJ[ci])
		s.clusterFreqSum[ci].Add(avg)
		s.clusterCoreSum[ci].Add(float64(clOnline[ci]))
	}

	// Reset the window.
	for i := range s.winBusySec {
		s.winBusySec[i] = 0
	}
	s.winElapsed = 0
	return nil
}

// refillQuota grants the shared pool quota×numCores×SamplePeriod seconds of
// execution for the next enforcement period — the cgroup arrangement where
// the quota caps the group's aggregate CPU time as a fraction of the
// phone's total capacity, not each core's.
func (s *Sim) refillQuota() {
	s.quotaPool = s.quota * float64(s.cpu.NumCores()) * s.cfg.SamplePeriod.Seconds()
}

// applyFrequencies programs each online core to its requested frequency,
// clamped by the owning cluster's own thermal zone on its own ladder. The
// applied mirror tracks what each core was last programmed to — only the
// sim mutates core frequencies, so comparing against the mirror skips the
// per-core locked CPU read the per-tick re-clamp used to pay.
//
//mobicore:hotpath
func (s *Sim) applyFrequencies() error {
	s.capGen = s.net.CapGen()
	dirty := false
	for i, want := range s.requested {
		f := s.net.Clamp(s.coreCluster[i], want)
		if s.applied[i] == f {
			continue
		}
		if err := s.cpu.SetFreq(i, f); err != nil {
			return fmt.Errorf("sim: programming core %d to %v: %w", i, f, err)
		}
		s.applied[i] = f
		dirty = true
	}
	if dirty {
		// A reprogrammed core (thermal clamp engaging or releasing between
		// samples) changes scheduling and power inputs the memo does not
		// fingerprint: drop every retained window's CPU-side vouch, and
		// refresh the snapshot mirror the scheduler trusts.
		s.invalidateFast()
		s.snap = s.cpu.SnapshotInto(s.snap)
	}
	return nil
}

// Run advances the simulation by d and returns the report for the whole
// session so far.
func (s *Sim) Run(d time.Duration) (*Report, error) {
	return s.RunCtx(context.Background(), d)
}

// RunCtx is Run with cooperative cancellation: when ctx is done the loop
// stops between ticks and returns the report accumulated so far alongside
// ctx's error, so callers can render partial results after a SIGINT.
func (s *Sim) RunCtx(ctx context.Context, d time.Duration) (*Report, error) {
	if d <= 0 {
		return nil, errors.New("sim: run duration must be positive")
	}
	end := s.now + d
	for s.now < end {
		select {
		case <-ctx.Done():
			return s.report(), ctx.Err()
		default:
		}
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.report(), nil
}

// RunUntilDone advances until every workload reports Done or maxDur
// elapses, whichever is first. It returns the report and whether all
// workloads finished.
func (s *Sim) RunUntilDone(maxDur time.Duration) (*Report, bool, error) {
	return s.RunUntilDoneCtx(context.Background(), maxDur)
}

// RunUntilDoneCtx is RunUntilDone with cooperative cancellation: when ctx
// is done the loop stops between ticks and returns the partial report, a
// false done flag, and ctx's error.
func (s *Sim) RunUntilDoneCtx(ctx context.Context, maxDur time.Duration) (*Report, bool, error) {
	if maxDur <= 0 {
		return nil, false, errors.New("sim: max duration must be positive")
	}
	end := s.now + maxDur
	for s.now < end {
		if allDone(s.cfg.Workloads) {
			return s.report(), true, nil
		}
		select {
		case <-ctx.Done():
			return s.report(), false, ctx.Err()
		default:
		}
		if err := s.Step(); err != nil {
			return nil, false, err
		}
	}
	return s.report(), allDone(s.cfg.Workloads), nil
}

func allDone(ws []workload.Workload) bool {
	for _, w := range ws {
		if !w.Done() {
			return false
		}
	}
	return true
}
