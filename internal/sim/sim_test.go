package sim

import (
	"math"
	"strings"
	"testing"
	"time"

	"mobicore/internal/core"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/soc"
	"mobicore/internal/workload"
)

func busyLoop(t *testing.T, util float64, threads int) workload.Workload {
	t.Helper()
	w, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: util,
		Threads:    threads,
		RefFreq:    soc.MSM8974Table().Max().Freq,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func androidDefault(t *testing.T) policy.Manager {
	t.Helper()
	mgr, err := policy.AndroidDefault(soc.MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	return mgr
}

func mobi(t *testing.T) policy.Manager {
	t.Helper()
	m, err := core.New(soc.MSM8974Table(), core.DefaultTunables())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	good := Config{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{busyLoop(t, 0.5, 4)},
	}
	if _, err := New(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}

	bad := good
	bad.Manager = nil
	if _, err := New(bad); err == nil {
		t.Error("nil manager accepted")
	}
	bad = good
	bad.Workloads = nil
	if _, err := New(bad); err == nil {
		t.Error("no workloads accepted")
	}
	bad = good
	bad.Tick = -time.Millisecond
	if _, err := New(bad); err == nil {
		t.Error("negative tick accepted")
	}
	bad = good
	bad.SamplePeriod = time.Microsecond
	if _, err := New(bad); err == nil {
		t.Error("sample period below tick accepted")
	}
	bad = good
	bad.InitialFreq = 301 * soc.MHz
	if _, err := New(bad); err == nil {
		t.Error("non-OPP initial frequency accepted")
	}
	bad = good
	bad.InitialCores = 9
	if _, err := New(bad); err == nil {
		t.Error("too many initial cores accepted")
	}
	bad = good
	bad.InitialQuota = 1.5
	if _, err := New(bad); err == nil {
		t.Error("quota > 1 accepted")
	}
}

func TestAndroidDefaultControlLoop(t *testing.T) {
	s, err := New(Config{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{busyLoop(t, 0.30, 4)},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AvgPowerW <= 0 {
		t.Error("average power should be positive")
	}
	if rep.AvgPowerW > 2.5 {
		t.Errorf("30%% load should not draw full-blast power, got %.3f W", rep.AvgPowerW)
	}
	if rep.AvgOnlineCores < 1 || rep.AvgOnlineCores > 4 {
		t.Errorf("avg cores = %.2f outside [1,4]", rep.AvgOnlineCores)
	}
	if rep.AvgQuota != 1 {
		t.Errorf("stock Android must not touch the quota, got %.2f", rep.AvgQuota)
	}
	if rep.ExecutedCycles == 0 {
		t.Error("no work executed")
	}
}

// TestGovernorTracksLoad: ondemand must run a light load at low frequency
// and a heavy load at high frequency.
func TestGovernorTracksLoad(t *testing.T) {
	run := func(util float64) *Report {
		s, err := New(Config{
			Platform:  platform.Nexus5().WithoutThrottle(),
			Manager:   androidDefault(t),
			Workloads: []workload.Workload{busyLoop(t, util, 4)},
			Seed:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	light := run(0.10)
	heavy := run(0.95)
	if light.AvgFreqHz >= heavy.AvgFreqHz {
		t.Errorf("light load avg freq (%.0f) should be below heavy load (%.0f)",
			light.AvgFreqHz, heavy.AvgFreqHz)
	}
	if light.AvgPowerW >= heavy.AvgPowerW {
		t.Errorf("light load power (%.3f W) should be below heavy load (%.3f W)",
			light.AvgPowerW, heavy.AvgPowerW)
	}
}

// TestMobiCoreSavesPowerOnSteadyLoad is the headline claim (Fig. 9a): on the
// hand-written benchmark MobiCore draws less than the Android default.
func TestMobiCoreSavesPowerOnSteadyLoad(t *testing.T) {
	run := func(mgr policy.Manager) *Report {
		s, err := New(Config{
			Platform:  platform.Nexus5(),
			Manager:   mgr,
			Workloads: []workload.Workload{busyLoop(t, 0.30, 4)},
			Seed:      7,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	def := run(androidDefault(t))
	mob := run(mobi(t))
	if mob.AvgPowerW >= def.AvgPowerW {
		t.Errorf("MobiCore (%.1f mW) should save power vs default (%.1f mW) at 30%% load",
			mob.AvgPowerW*1000, def.AvgPowerW*1000)
	}
	t.Logf("default=%.1f mW mobicore=%.1f mW saving=%.1f%%",
		def.AvgPowerW*1000, mob.AvgPowerW*1000,
		100*(def.AvgPowerW-mob.AvgPowerW)/def.AvgPowerW)
}

func TestDeterminism(t *testing.T) {
	run := func() *Report {
		s, err := New(Config{
			Platform:  platform.Nexus5(),
			Manager:   mobi(t),
			Workloads: []workload.Workload{busyLoop(t, 0.40, 4)},
			Seed:      99,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(3 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.AvgPowerW != b.AvgPowerW || a.ExecutedCycles != b.ExecutedCycles ||
		a.AvgFreqHz != b.AvgFreqHz || a.AvgOnlineCores != b.AvgOnlineCores {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestThermalThrottleEngages: sustained full blast on the Nexus 5 profile
// must engage the thermal cap (the Fig. 4 mechanism).
func TestThermalThrottleEngages(t *testing.T) {
	perf, err := policy.Pinned(soc.MSM8974Table(), soc.MSM8974Table().Max().Freq, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:  platform.Nexus5(),
		Manager:   perf,
		Workloads: []workload.Workload{busyLoop(t, 1.0, 4)},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(120 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThermalCappedSec == 0 {
		t.Errorf("sustained full blast never throttled (max temp %.1f C)", rep.MaxTempC)
	}
	// The skin trip (36 °C) must have been reached and held near.
	if rep.MaxTempC < 35 {
		t.Errorf("max temp %.1f C too low for full blast", rep.MaxTempC)
	}
}

// TestWithoutThrottleReachesIRTemp reproduces the Fig. 2a measurement: the
// unthrottled Nexus 5 settles near 42 °C at full blast.
func TestWithoutThrottleReachesIRTemp(t *testing.T) {
	perf, err := policy.Pinned(soc.MSM8974Table(), soc.MSM8974Table().Max().Freq, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:  platform.Nexus5().WithoutThrottle(),
		Manager:   perf,
		Workloads: []workload.Workload{busyLoop(t, 1.0, 4)},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(180 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MaxTempC-42.1) > 2.5 {
		t.Errorf("steady-state temp = %.1f C, want ≈42.1 C (Fig. 2a)", rep.MaxTempC)
	}
}

func TestRunUntilDone(t *testing.T) {
	steps := []workload.Step{{Duration: 200 * time.Millisecond, CyclesPerSec: 1e9}}
	scripted, err := workload.NewScripted("finite", 2, steps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{scripted},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, done, err := s.RunUntilDone(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("finite workload never finished")
	}
	if rep.Duration >= 10*time.Second {
		t.Error("RunUntilDone should stop early")
	}
}

func TestReportSummaryRendering(t *testing.T) {
	s, err := New(Config{
		Platform:  platform.Nexus5(),
		Manager:   androidDefault(t),
		Workloads: []workload.Workload{busyLoop(t, 0.5, 4)},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"policy:", "avg power:", "Nexus 5"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sb.String())
		}
	}
}
