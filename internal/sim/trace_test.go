package sim

import (
	"math"
	"testing"
	"time"

	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/workload"
)

func traceSim(t *testing.T, plat platform.Platform, hook func(now, dt time.Duration, systemW float64, clusterW []float64)) *Sim {
	t.Helper()
	mgr, err := policy.AndroidDefault(plat.Table)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: 0.5, Threads: 4, RefFreq: plat.ClusterSpecs()[0].Table.Max().Freq,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Platform:   plat,
		Manager:    mgr,
		Workloads:  []workload.Workload{wl},
		Seed:       7,
		PowerTrace: hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPowerTraceHook: the hook fires once per tick with the tick's start
// time, and integrating systemW·dt reproduces the report's EnergyJ exactly.
// The per-cluster shares sum to system minus the platform floor share.
func TestPowerTraceHook(t *testing.T) {
	plat := platform.Nexus5()
	var (
		ticks    int
		joules   float64
		lastNow  time.Duration = -1
		clusters int
	)
	s := traceSim(t, plat, func(now, dt time.Duration, systemW float64, clusterW []float64) {
		ticks++
		joules += systemW * dt.Seconds()
		if now <= lastNow {
			t.Fatalf("trace time went backwards: %v after %v", now, lastNow)
		}
		lastNow = now
		clusters = len(clusterW)
		if systemW <= 0 {
			t.Fatalf("non-positive system power %v at %v", systemW, now)
		}
	})
	rep, err := s.Run(200 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ticks != 200 {
		t.Errorf("hook fired %d times, want 200 (one per 1 ms tick)", ticks)
	}
	if clusters != len(plat.ClusterSpecs()) {
		t.Errorf("cluster watts has %d entries, want %d", clusters, len(plat.ClusterSpecs()))
	}
	if math.Abs(joules-rep.EnergyJ) > 1e-9*(1+rep.EnergyJ) {
		t.Errorf("trace integral %.9f J != report energy %.9f J", joules, rep.EnergyJ)
	}
}

// TestPowerTraceMatchesUntraced: installing the hook never changes the
// physics — the traced session's report equals the untraced one's.
func TestPowerTraceMatchesUntraced(t *testing.T) {
	run := func(hook func(now, dt time.Duration, systemW float64, clusterW []float64)) *Report {
		t.Helper()
		s := traceSim(t, platform.Nexus5(), hook)
		rep, err := s.Run(150 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	traced := run(func(_, _ time.Duration, _ float64, _ []float64) {})
	plain := run(nil)
	if traced.EnergyJ != plain.EnergyJ || traced.ExecutedCycles != plain.ExecutedCycles ||
		traced.AvgFreqHz != plain.AvgFreqHz {
		t.Errorf("trace hook perturbed the run: %.9f J vs %.9f J", traced.EnergyJ, plain.EnergyJ)
	}
}

// TestStepAllocs locks the per-tick allocation diet after pooling every
// scheduler and snapshot buffer: a steady-state Step (including its
// amortized share of policy samples) averages 1 alloc/op on this
// workload — the Result.BusySeconds slice that escapes to the caller —
// down from 13 before pooling started and 11 before the scheduler's
// budget/online/freq/runnable scratch, the CPU snapshots, and the
// utilization buffer were pooled. The hotalloc analyzer (cmd/mobilint)
// guards the annotated functions statically; this test guards the
// dynamic total.
func TestStepAllocs(t *testing.T) {
	s := traceSim(t, platform.Nexus5(), nil)
	if _, err := s.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	})
	// The warm tick loop is fully pooled: scheduler results reuse the
	// Sim's busy-seconds buffer, the CPU commits under one batched lock,
	// and every per-sample slice draws from arena-style scratch. The
	// fractional budget tolerates rare runtime-internal noise only.
	const budget = 0.5
	if allocs > budget {
		t.Errorf("Step allocates %.1f objects/op, budget %.1f — did a pooled slice regress?", allocs, budget)
	}
}
