package soc

import (
	"errors"
	"fmt"
	"sort"
)

// Cluster describes one frequency domain of a CPU: a group of identical
// cores sharing an OPP table, as in a big.LITTLE SoC where the A53 and A57
// clusters each have their own frequency ladder. A homogeneous CPU is the
// degenerate single-cluster case.
type Cluster struct {
	// Name identifies the cluster in reports, e.g. "LITTLE" or "big".
	Name string
	// NumCores is the number of cores in the cluster.
	NumCores int
	// Table is the cluster's private OPP table.
	Table *OPPTable
}

// Validate rejects malformed cluster definitions.
func (cl Cluster) Validate() error {
	if cl.Name == "" {
		return errors.New("soc: cluster needs a name")
	}
	if cl.NumCores < 1 {
		return fmt.Errorf("soc: cluster %s core count %d", cl.Name, cl.NumCores)
	}
	if cl.Table == nil || cl.Table.Len() == 0 {
		return fmt.Errorf("soc: cluster %s: %w", cl.Name, ErrEmptyTable)
	}
	return nil
}

// Errors specific to cluster operations.
var (
	ErrInvalidCluster = errors.New("soc: invalid cluster index")
	ErrNoOnlineCore   = errors.New("soc: at least one core must stay online")
)

// NewClusteredCPU builds a CPU from an ordered list of clusters. Core ids
// are assigned contiguously in cluster order, so listing the LITTLE cluster
// first gives it the low core ids — the msm8994-style numbering that makes
// lowest-id-first hotplug prefer the efficient cores. All cores start
// online (idle) at their cluster's minimum frequency.
func NewClusteredCPU(clusters []Cluster) (*CPU, error) {
	if len(clusters) == 0 {
		return nil, errors.New("soc: need at least one cluster")
	}
	total := 0
	for _, cl := range clusters {
		if err := cl.Validate(); err != nil {
			return nil, err
		}
		total += cl.NumCores
	}
	cs := make([]Cluster, len(clusters))
	copy(cs, clusters)
	cores := make([]*Core, 0, total)
	coreCluster := make([]int, 0, total)
	for ci, cl := range cs {
		for i := 0; i < cl.NumCores; i++ {
			cores = append(cores, newCore(len(cores), cl.Table))
			coreCluster = append(coreCluster, ci)
		}
	}
	c := &CPU{cores: cores, table: cs[0].Table, clusters: cs, coreCluster: coreCluster}
	c.computeRanks()
	return c, nil
}

// computeRanks caches the efficiency rank of every core: clusters ordered
// by ascending top frequency (ties keep cluster-id order), rank 0 the most
// efficient. The topology is fixed at construction, so schedulers can read
// the ranks every window without re-deriving them.
func (c *CPU) computeRanks() {
	if len(c.clusters) == 1 {
		c.coreRank = nil // homogeneous: callers treat nil as all-rank-0
		c.numRanks = 1
		return
	}
	order := make([]int, len(c.clusters))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return c.clusters[order[a]].Table.Max().Freq < c.clusters[order[b]].Table.Max().Freq
	})
	rankOfCluster := make([]int, len(c.clusters))
	for rank, ci := range order {
		rankOfCluster[ci] = rank
	}
	c.coreRank = make([]int, len(c.cores))
	for id, ci := range c.coreCluster {
		c.coreRank[id] = rankOfCluster[ci]
	}
	c.numRanks = len(c.clusters)
}

// ClusterRanks returns the per-core efficiency ranks (nil on homogeneous
// CPUs, meaning every core is rank 0) and the number of ranks. The slice
// is shared and must not be mutated.
func (c *CPU) ClusterRanks() ([]int, int) { return c.coreRank, c.numRanks }

// NumClusters returns the number of frequency domains.
func (c *CPU) NumClusters() int { return len(c.clusters) }

// Clusters returns a copy of the cluster definitions in id order.
func (c *CPU) Clusters() []Cluster {
	out := make([]Cluster, len(c.clusters))
	copy(out, c.clusters)
	return out
}

// ClusterOf returns the cluster index owning core id, or -1 for an invalid
// id.
func (c *CPU) ClusterOf(id int) int {
	if id < 0 || id >= len(c.coreCluster) {
		return -1
	}
	return c.coreCluster[id]
}

// ClusterTable returns cluster ci's OPP table.
func (c *CPU) ClusterTable(ci int) (*OPPTable, error) {
	if ci < 0 || ci >= len(c.clusters) {
		return nil, fmt.Errorf("%w: %d (have %d clusters)", ErrInvalidCluster, ci, len(c.clusters))
	}
	return c.clusters[ci].Table, nil
}

// ClusterCoreIDs returns the core ids belonging to cluster ci in ascending
// order.
func (c *CPU) ClusterCoreIDs(ci int) ([]int, error) {
	if ci < 0 || ci >= len(c.clusters) {
		return nil, fmt.Errorf("%w: %d (have %d clusters)", ErrInvalidCluster, ci, len(c.clusters))
	}
	ids := make([]int, 0, c.clusters[ci].NumCores)
	for id, owner := range c.coreCluster {
		if owner == ci {
			ids = append(ids, id)
		}
	}
	return ids, nil
}

// ClusterOnlineCount returns the number of online cores in cluster ci.
func (c *CPU) ClusterOnlineCount(ci int) (int, error) {
	if ci < 0 || ci >= len(c.clusters) {
		return 0, fmt.Errorf("%w: %d (have %d clusters)", ErrInvalidCluster, ci, len(c.clusters))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for id, owner := range c.coreCluster {
		if owner == ci && c.cores[id].Online() {
			n++
		}
	}
	return n, nil
}

// SetClusterFreq programs every core of cluster ci to freq — the
// one-clock-per-cluster arrangement of real big.LITTLE parts (each cluster
// is one cpufreq policy domain). Offline cores are programmed too, so they
// resume at the domain frequency. freq must be an operating point of the
// cluster's table.
func (c *CPU) SetClusterFreq(ci int, freq Hz) error {
	if ci < 0 || ci >= len(c.clusters) {
		return fmt.Errorf("%w: %d (have %d clusters)", ErrInvalidCluster, ci, len(c.clusters))
	}
	if c.clusters[ci].Table.IndexOf(freq) < 0 {
		return fmt.Errorf("%w: %v (cluster %s)", ErrBadFrequency, freq, c.clusters[ci].Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, owner := range c.coreCluster {
		if owner != ci {
			continue
		}
		if err := c.cores[id].setFreq(freq); err != nil {
			return err
		}
	}
	return nil
}

// SetClusterOnlineCount onlines/offlines cores within cluster ci so that
// exactly n of its cores are online. Unlike the flat SetOnlineCount, n may
// be 0: a whole cluster can be parked (big cores gated while the LITTLE
// cluster carries the phone), as long as at least one core somewhere on the
// SoC stays online. Cores are onlined lowest-id first and offlined
// highest-id first within the cluster.
func (c *CPU) SetClusterOnlineCount(ci, n int) error {
	if ci < 0 || ci >= len(c.clusters) {
		return fmt.Errorf("%w: %d (have %d clusters)", ErrInvalidCluster, ci, len(c.clusters))
	}
	if n < 0 {
		n = 0
	}
	if n > c.clusters[ci].NumCores {
		n = c.clusters[ci].NumCores
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	onlineIn, onlineElsewhere := 0, 0
	for id, owner := range c.coreCluster {
		if !c.cores[id].Online() {
			continue
		}
		if owner == ci {
			onlineIn++
		} else {
			onlineElsewhere++
		}
	}
	if n == 0 && onlineElsewhere == 0 {
		return ErrNoOnlineCore
	}
	ids := c.clusterCoreIDsLocked(ci)
	for _, id := range ids { // online from the lowest id
		if onlineIn >= n {
			break
		}
		if !c.cores[id].Online() {
			c.cores[id].state = StateIdle
			onlineIn++
		}
	}
	for i := len(ids) - 1; i >= 0 && onlineIn > n; i-- { // offline from the highest
		if c.cores[ids[i]].Online() {
			c.cores[ids[i]].state = StateOffline
			onlineIn--
		}
	}
	return nil
}

// clusterCoreIDsLocked is ClusterCoreIDs without locking or index
// validation (the caller has already checked ci), for use while c.mu is
// held.
func (c *CPU) clusterCoreIDsLocked(ci int) []int {
	ids := make([]int, 0, c.clusters[ci].NumCores)
	for id, owner := range c.coreCluster {
		if owner == ci {
			ids = append(ids, id)
		}
	}
	return ids
}
