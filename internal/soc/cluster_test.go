package soc

import (
	"errors"
	"testing"
)

func testClusters(t *testing.T) []Cluster {
	t.Helper()
	little, err := UniformTable(4, 200*MHz, 1000*MHz, 0.80, 1.00)
	if err != nil {
		t.Fatal(err)
	}
	big, err := UniformTable(5, 300*MHz, 2000*MHz, 0.85, 1.20)
	if err != nil {
		t.Fatal(err)
	}
	return []Cluster{
		{Name: "LITTLE", NumCores: 4, Table: little},
		{Name: "big", NumCores: 2, Table: big},
	}
}

func TestNewClusteredCPUTopology(t *testing.T) {
	cpu, err := NewClusteredCPU(testClusters(t))
	if err != nil {
		t.Fatal(err)
	}
	if cpu.NumCores() != 6 {
		t.Fatalf("NumCores = %d, want 6", cpu.NumCores())
	}
	if cpu.NumClusters() != 2 {
		t.Fatalf("NumClusters = %d, want 2", cpu.NumClusters())
	}
	for id := 0; id < 4; id++ {
		if cpu.ClusterOf(id) != 0 {
			t.Errorf("core %d cluster = %d, want 0 (LITTLE first)", id, cpu.ClusterOf(id))
		}
	}
	for id := 4; id < 6; id++ {
		if cpu.ClusterOf(id) != 1 {
			t.Errorf("core %d cluster = %d, want 1", id, cpu.ClusterOf(id))
		}
	}
	if cpu.ClusterOf(6) != -1 || cpu.ClusterOf(-1) != -1 {
		t.Error("out-of-range core ids should map to cluster -1")
	}
	ids, err := cpu.ClusterCoreIDs(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 5 {
		t.Errorf("big cluster core ids = %v, want [4 5]", ids)
	}
	for _, c := range cpu.Snapshot() {
		if c.Cluster != cpu.ClusterOf(c.ID) {
			t.Errorf("snapshot core %d cluster = %d, want %d", c.ID, c.Cluster, cpu.ClusterOf(c.ID))
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewClusteredCPU(nil); err == nil {
		t.Error("empty cluster list accepted")
	}
	cls := testClusters(t)
	cls[0].NumCores = 0
	if _, err := NewClusteredCPU(cls); err == nil {
		t.Error("zero-core cluster accepted")
	}
	cls = testClusters(t)
	cls[1].Table = nil
	if _, err := NewClusteredCPU(cls); err == nil {
		t.Error("nil cluster table accepted")
	}
	cls = testClusters(t)
	cls[0].Name = ""
	if _, err := NewClusteredCPU(cls); err == nil {
		t.Error("unnamed cluster accepted")
	}
}

func TestSetClusterFreqValidatesOwnTable(t *testing.T) {
	cls := testClusters(t)
	cpu, err := NewClusteredCPU(cls)
	if err != nil {
		t.Fatal(err)
	}
	bigMax := cls[1].Table.Max().Freq
	if err := cpu.SetClusterFreq(1, bigMax); err != nil {
		t.Fatalf("big cluster rejects its own max: %v", err)
	}
	// The big max is not a LITTLE operating point.
	if err := cpu.SetClusterFreq(0, bigMax); !errors.Is(err, ErrBadFrequency) {
		t.Errorf("LITTLE accepted a big-only frequency: %v", err)
	}
	if err := cpu.SetClusterFreq(2, bigMax); !errors.Is(err, ErrInvalidCluster) {
		t.Errorf("invalid cluster index: %v", err)
	}
	// Per-core SetFreq validates against the owning cluster too.
	if err := cpu.SetFreq(0, bigMax); err == nil {
		t.Error("core 0 (LITTLE) accepted a big-only frequency")
	}
	if err := cpu.SetFreq(4, bigMax); err != nil {
		t.Errorf("core 4 (big) rejected its own max: %v", err)
	}
	// Offline cores are programmed too, so they resume at the domain clock.
	if err := cpu.SetClusterOnlineCount(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := cpu.SetClusterFreq(1, bigMax); err != nil {
		t.Fatal(err)
	}
	if f, err := cpu.Freq(5); err != nil || f != bigMax {
		t.Errorf("offline big core freq = %v (%v), want %v", f, err, bigMax)
	}
}

func TestSetClusterOnlineCount(t *testing.T) {
	cpu, err := NewClusteredCPU(testClusters(t))
	if err != nil {
		t.Fatal(err)
	}
	// Park the whole big cluster.
	if err := cpu.SetClusterOnlineCount(1, 0); err != nil {
		t.Fatal(err)
	}
	if n, _ := cpu.ClusterOnlineCount(1); n != 0 {
		t.Errorf("big online = %d, want 0", n)
	}
	if cpu.OnlineCount() != 4 {
		t.Errorf("total online = %d, want 4", cpu.OnlineCount())
	}
	// Shrink LITTLE to one core; lowest ids stay up.
	if err := cpu.SetClusterOnlineCount(0, 1); err != nil {
		t.Fatal(err)
	}
	ids := cpu.OnlineIDs()
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("online ids = %v, want [0]", ids)
	}
	// The last online core on the SoC cannot be parked.
	if err := cpu.SetClusterOnlineCount(0, 0); !errors.Is(err, ErrNoOnlineCore) {
		t.Errorf("parked the last online core: %v", err)
	}
	// Clamping: requests beyond the cluster size saturate.
	if err := cpu.SetClusterOnlineCount(1, 99); err != nil {
		t.Fatal(err)
	}
	if n, _ := cpu.ClusterOnlineCount(1); n != 2 {
		t.Errorf("big online = %d, want 2 after clamped request", n)
	}
}

func TestSetFreqAllHeterogeneous(t *testing.T) {
	cls := testClusters(t)
	cpu, err := NewClusteredCPU(cls)
	if err != nil {
		t.Fatal(err)
	}
	// A frequency in only one cluster's table is rejected outright.
	if err := cpu.SetFreqAll(cls[1].Table.Max().Freq); !errors.Is(err, ErrBadFrequency) {
		t.Errorf("SetFreqAll accepted a non-shared operating point: %v", err)
	}
}

func TestNewCPUSingleCluster(t *testing.T) {
	table := MSM8974Table()
	cpu, err := NewCPU(4, table)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.NumClusters() != 1 {
		t.Fatalf("homogeneous CPU clusters = %d, want 1", cpu.NumClusters())
	}
	if cpu.Table() != table {
		t.Error("Table() should return the single cluster's table")
	}
	for id := 0; id < 4; id++ {
		if cpu.ClusterOf(id) != 0 {
			t.Errorf("core %d cluster = %d, want 0", id, cpu.ClusterOf(id))
		}
	}
}
