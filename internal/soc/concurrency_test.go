package soc

import (
	"sync"
	"testing"
)

// TestCPUConcurrentAccess exercises the CPU's mutex under parallel
// frequency programming, hotplug, execution, and snapshotting. Run with
// -race to validate the locking.
func TestCPUConcurrentAccess(t *testing.T) {
	cpu, err := NewCPU(4, MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	freqs := MSM8974Table().Frequencies()

	var wg sync.WaitGroup
	const iters = 500

	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := cpu.SetFreq(i%4, freqs[i%len(freqs)]); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = cpu.SetOnlineCount(1 + i%4)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			// Execution may race with hotplug: offline errors are
			// expected and fine; corruption is not.
			_, _ = cpu.Run(i%4, 1000, 2000)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			snap := cpu.Snapshot()
			if len(snap) != 4 {
				t.Errorf("snapshot size %d", len(snap))
				return
			}
			_ = cpu.OnlineCount()
			_ = cpu.CapacityCyclesPerSec()
		}
	}()
	wg.Wait()

	if got := cpu.OnlineCount(); got < 1 || got > 4 {
		t.Errorf("online count %d corrupted", got)
	}
}
