package soc

import (
	"errors"
	"fmt"
	"sync"
)

// CoreState is the power state of a single CPU core (§2.1 of the thesis).
type CoreState int

// The three states the paper distinguishes. Active executes instructions at
// the programmed frequency; Idle is online but not executing (it still leaks
// because the rail stays up); Offline is the deepest state, consuming almost
// nothing, reachable only through hotplug.
const (
	StateOffline CoreState = iota + 1
	StateIdle
	StateActive
)

// String implements fmt.Stringer.
func (s CoreState) String() string {
	switch s {
	case StateOffline:
		return "offline"
	case StateIdle:
		return "idle"
	case StateActive:
		return "active"
	default:
		return fmt.Sprintf("CoreState(%d)", int(s))
	}
}

// Errors returned by core and CPU operations.
var (
	ErrCoreOffline  = errors.New("soc: core is offline")
	ErrLastCore     = errors.New("soc: cannot offline the last online core")
	ErrInvalidCore  = errors.New("soc: invalid core id")
	ErrBadFrequency = errors.New("soc: frequency is not an operating point")
)

// Core is one CPU core. It tracks its state, current operating point, and
// cumulative busy/idle cycle accounting. Core is not safe for concurrent use;
// the owning CPU serializes access.
type Core struct {
	id    int
	table *OPPTable

	state CoreState
	opp   OPP

	// Cycle accounting since construction.
	busyCycles  uint64
	totalActive uint64 // nanoseconds spent online (active or idle)
	busyNanos   uint64 // nanoseconds spent executing
}

// newCore constructs an online, idle core at the table's minimum frequency.
func newCore(id int, table *OPPTable) *Core {
	return &Core{id: id, table: table, state: StateIdle, opp: table.Min()}
}

// ID returns the core's index within its CPU.
func (c *Core) ID() int { return c.id }

// State returns the core's current power state.
func (c *Core) State() CoreState { return c.state }

// Online reports whether the core is idle or active.
func (c *Core) Online() bool { return c.state != StateOffline }

// Freq returns the core's programmed frequency. Offline cores report the
// frequency they will resume at.
func (c *Core) Freq() Hz { return c.opp.Freq }

// Volt returns the supply voltage of the core's programmed operating point.
func (c *Core) Volt() Volt { return c.opp.Volt }

// OPP returns the core's full programmed operating point.
func (c *Core) OPP() OPP { return c.opp }

// BusyCycles returns cumulative executed cycles.
func (c *Core) BusyCycles() uint64 { return c.busyCycles }

// setFreq programs an exact operating point.
func (c *Core) setFreq(freq Hz) error {
	i := c.table.IndexOf(freq)
	if i < 0 {
		return fmt.Errorf("%w: %v", ErrBadFrequency, freq)
	}
	c.opp = c.table.At(i)
	return nil
}

// CPU is a multi-core processor with per-core DVFS (each core has its own
// rail, as on the MSM8974) and hotplug, organized as one or more clusters
// (frequency domains). CPU is safe for concurrent use.
type CPU struct {
	mu          sync.Mutex
	cores       []*Core
	table       *OPPTable // first cluster's table, the homogeneous view
	clusters    []Cluster
	coreCluster []int // core id -> cluster index
	coreRank    []int // core id -> efficiency rank; nil when homogeneous
	numRanks    int
}

// NewCPU builds a homogeneous CPU with n identical cores sharing one OPP
// table — a single-cluster SoC. All cores start online (idle) at the
// minimum frequency, which is where a freshly booted kernel leaves them.
func NewCPU(n int, table *OPPTable) (*CPU, error) {
	if n <= 0 {
		return nil, fmt.Errorf("soc: core count must be positive, got %d", n)
	}
	if table == nil || table.Len() == 0 {
		return nil, ErrEmptyTable
	}
	return NewClusteredCPU([]Cluster{{Name: "cpu", NumCores: n, Table: table}})
}

// NumCores returns the total number of cores, online or not.
func (c *CPU) NumCores() int { return len(c.cores) }

// Table returns the first cluster's OPP table. On a homogeneous CPU this is
// the shared table; heterogeneous callers should resolve tables per cluster
// via ClusterTable.
func (c *CPU) Table() *OPPTable { return c.table }

// OnlineCount returns the number of online cores.
func (c *CPU) OnlineCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, core := range c.cores {
		if core.Online() {
			n++
		}
	}
	return n
}

// OnlineIDs returns the ids of all online cores in ascending order.
func (c *CPU) OnlineIDs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]int, 0, len(c.cores))
	for _, core := range c.cores {
		if core.Online() {
			ids = append(ids, core.id)
		}
	}
	return ids
}

// CoreSnapshot is an immutable view of one core, safe to hold across ticks.
type CoreSnapshot struct {
	ID         int
	Cluster    int // owning cluster index; 0 on homogeneous CPUs
	State      CoreState
	Freq       Hz
	Volt       Volt
	BusyCycles uint64
}

// Snapshot captures the state of every core.
func (c *CPU) Snapshot() []CoreSnapshot {
	return c.SnapshotInto(nil)
}

// SnapshotInto is Snapshot writing into dst when it has the capacity,
// so per-tick callers can reuse one buffer and keep the hot loop
// allocation-free. It returns the filled slice (dst's backing array
// when it fits, a fresh one otherwise).
//
//mobicore:hotpath
func (c *CPU) SnapshotInto(dst []CoreSnapshot) []CoreSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cap(dst) < len(c.cores) {
		//mobilint:ignore one-time buffer growth; steady-state callers pass a full-size buffer
		dst = make([]CoreSnapshot, len(c.cores))
	}
	dst = dst[:len(c.cores)]
	for i, core := range c.cores {
		dst[i] = CoreSnapshot{
			ID:         core.id,
			Cluster:    c.coreCluster[i],
			State:      core.state,
			Freq:       core.opp.Freq,
			Volt:       core.opp.Volt,
			BusyCycles: core.busyCycles,
		}
	}
	return dst
}

// SetFreq programs core id to the exact operating frequency freq.
func (c *CPU) SetFreq(id int, freq Hz) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	core, err := c.core(id)
	if err != nil {
		return err
	}
	return core.setFreq(freq)
}

// SetFreqAll programs every online core to freq (global DVFS). freq must be
// an operating point of every cluster's table, so on heterogeneous CPUs use
// SetClusterFreq per domain instead.
func (c *CPU) SetFreqAll(freq Hz) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cl := range c.clusters {
		if cl.Table.IndexOf(freq) < 0 {
			return fmt.Errorf("%w: %v (cluster %s)", ErrBadFrequency, freq, cl.Name)
		}
	}
	for _, core := range c.cores {
		if core.Online() {
			if err := core.setFreq(freq); err != nil {
				return err
			}
		}
	}
	return nil
}

// Freq returns core id's programmed frequency.
func (c *CPU) Freq(id int) (Hz, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	core, err := c.core(id)
	if err != nil {
		return 0, err
	}
	return core.opp.Freq, nil
}

// Online brings core id online (into the idle state). Bringing an online
// core online is a no-op, matching the kernel's hotplug semantics.
func (c *CPU) Online(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	core, err := c.core(id)
	if err != nil {
		return err
	}
	if core.state == StateOffline {
		core.state = StateIdle
	}
	return nil
}

// Offline removes core id from service. The last online core cannot be
// offlined: the kernel forbids it and so do we, because a zero-core system
// has no meaning.
func (c *CPU) Offline(id int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	core, err := c.core(id)
	if err != nil {
		return err
	}
	if core.state == StateOffline {
		return nil
	}
	online := 0
	for _, other := range c.cores {
		if other.Online() {
			online++
		}
	}
	if online <= 1 {
		return ErrLastCore
	}
	core.state = StateOffline
	return nil
}

// SetOnlineCount onlines/offlines cores so that exactly n are online.
// Cores are onlined lowest-id first and offlined highest-id first, the
// convention mpdecision follows (core 0 stays up). n is clamped to [1, max].
func (c *CPU) SetOnlineCount(n int) error {
	if n < 1 {
		n = 1
	}
	if n > len(c.cores) {
		n = len(c.cores)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	online := 0
	for _, core := range c.cores {
		if core.Online() {
			online++
		}
	}
	// Online additional cores from the lowest id.
	for i := 0; online < n && i < len(c.cores); i++ {
		if !c.cores[i].Online() {
			c.cores[i].state = StateIdle
			online++
		}
	}
	// Offline surplus cores from the highest id.
	for i := len(c.cores) - 1; online > n && i > 0; i-- {
		if c.cores[i].Online() {
			c.cores[i].state = StateOffline
			online--
		}
	}
	return nil
}

// Run executes busyNanos of work on core id within a window of windowNanos,
// updating state and cycle accounting. busyNanos is clamped to windowNanos.
// It returns the number of cycles executed. Calling Run on an offline core
// returns ErrCoreOffline: the scheduler must never place work there.
//
//mobicore:hotpath
func (c *CPU) Run(id int, busyNanos, windowNanos uint64) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	core, err := c.core(id)
	if err != nil {
		return 0, err
	}
	if !core.Online() {
		return 0, fmt.Errorf("%w: core %d", ErrCoreOffline, id)
	}
	if busyNanos > windowNanos {
		busyNanos = windowNanos
	}
	cycles := uint64(float64(core.opp.Freq) * float64(busyNanos) / 1e9)
	core.busyCycles += cycles
	core.busyNanos += busyNanos
	core.totalActive += windowNanos
	if busyNanos > 0 {
		core.state = StateActive
	} else {
		core.state = StateIdle
	}
	return cycles, nil
}

// RunBatch commits one scheduling window for every core under a single
// lock: busyNanos[i] nanoseconds of execution on core i within a window of
// windowNanos. Entries are clamped to the window. Offline cores are skipped
// when their entry is zero and rejected (ErrCoreOffline) otherwise — the
// scheduler must never place work on them. The per-core math is exactly
// Run's, so a batch commit is bit-identical to len(busyNanos) Run calls;
// the batch exists because the per-tick commit loop otherwise pays one
// mutex round-trip per core.
//
//mobicore:hotpath
func (c *CPU) RunBatch(busyNanos []uint64, windowNanos uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(busyNanos) != len(c.cores) {
		return fmt.Errorf("%w: batch of %d busy entries for %d cores", ErrInvalidCore, len(busyNanos), len(c.cores))
	}
	for i, core := range c.cores {
		b := busyNanos[i]
		if !core.Online() {
			if b > 0 {
				return fmt.Errorf("%w: core %d", ErrCoreOffline, i)
			}
			continue
		}
		if b > windowNanos {
			b = windowNanos
		}
		cycles := uint64(float64(core.opp.Freq) * float64(b) / 1e9)
		core.busyCycles += cycles
		core.busyNanos += b
		core.totalActive += windowNanos
		if b > 0 {
			core.state = StateActive
		} else {
			core.state = StateIdle
		}
	}
	return nil
}

// CapacityCyclesPerSec returns the aggregate cycles/second of all online
// cores at their current frequencies — the headroom the scheduler has.
func (c *CPU) CapacityCyclesPerSec() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total float64
	for _, core := range c.cores {
		if core.Online() {
			total += float64(core.opp.Freq)
		}
	}
	return total
}

func (c *CPU) core(id int) (*Core, error) {
	if id < 0 || id >= len(c.cores) {
		return nil, fmt.Errorf("%w: %d (have %d cores)", ErrInvalidCore, id, len(c.cores))
	}
	return c.cores[id], nil
}
