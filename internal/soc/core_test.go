package soc

import (
	"errors"
	"testing"
)

func newTestCPU(t *testing.T) *CPU {
	t.Helper()
	cpu, err := NewCPU(4, MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestNewCPUValidation(t *testing.T) {
	if _, err := NewCPU(0, MSM8974Table()); err == nil {
		t.Error("NewCPU(0) should fail")
	}
	if _, err := NewCPU(-1, MSM8974Table()); err == nil {
		t.Error("NewCPU(-1) should fail")
	}
	if _, err := NewCPU(4, nil); err == nil {
		t.Error("NewCPU with nil table should fail")
	}
}

func TestCPUBootState(t *testing.T) {
	cpu := newTestCPU(t)
	if got := cpu.OnlineCount(); got != 4 {
		t.Errorf("boot online count = %d, want 4", got)
	}
	for _, c := range cpu.Snapshot() {
		if c.State != StateIdle {
			t.Errorf("core %d boot state = %v, want idle", c.ID, c.State)
		}
		if c.Freq != 300*MHz {
			t.Errorf("core %d boot freq = %v, want table minimum", c.ID, c.Freq)
		}
	}
}

func TestSetFreq(t *testing.T) {
	cpu := newTestCPU(t)
	if err := cpu.SetFreq(2, 960_000*KHz); err != nil {
		t.Fatal(err)
	}
	f, err := cpu.Freq(2)
	if err != nil {
		t.Fatal(err)
	}
	if f != 960_000*KHz {
		t.Errorf("freq = %v, want 960MHz", f)
	}
	if err := cpu.SetFreq(2, 961*MHz); !errors.Is(err, ErrBadFrequency) {
		t.Errorf("SetFreq(non-OPP) error = %v, want ErrBadFrequency", err)
	}
	if err := cpu.SetFreq(9, 300*MHz); !errors.Is(err, ErrInvalidCore) {
		t.Errorf("SetFreq(bad core) error = %v, want ErrInvalidCore", err)
	}
}

func TestHotplugSemantics(t *testing.T) {
	cpu := newTestCPU(t)
	if err := cpu.Offline(3); err != nil {
		t.Fatal(err)
	}
	if err := cpu.Offline(3); err != nil {
		t.Errorf("offlining an offline core should be a no-op, got %v", err)
	}
	if got := cpu.OnlineCount(); got != 3 {
		t.Fatalf("online count = %d, want 3", got)
	}
	for _, id := range []int{2, 1} {
		if err := cpu.Offline(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := cpu.Offline(0); !errors.Is(err, ErrLastCore) {
		t.Errorf("offlining last core error = %v, want ErrLastCore", err)
	}
	if err := cpu.Online(1); err != nil {
		t.Fatal(err)
	}
	if got := cpu.OnlineCount(); got != 2 {
		t.Errorf("online count after re-online = %d, want 2", got)
	}
}

func TestSetOnlineCount(t *testing.T) {
	cpu := newTestCPU(t)
	tests := []struct {
		target int
		want   int
		ids    []int
	}{
		{2, 2, []int{0, 1}}, // offline from the top
		{4, 4, []int{0, 1, 2, 3}},
		{1, 1, []int{0}},          // core 0 always survives
		{0, 1, []int{0}},          // clamped to 1
		{9, 4, []int{0, 1, 2, 3}}, // clamped to max
	}
	for _, tt := range tests {
		if err := cpu.SetOnlineCount(tt.target); err != nil {
			t.Fatalf("SetOnlineCount(%d): %v", tt.target, err)
		}
		if got := cpu.OnlineCount(); got != tt.want {
			t.Errorf("SetOnlineCount(%d): count = %d, want %d", tt.target, got, tt.want)
		}
		ids := cpu.OnlineIDs()
		if len(ids) != len(tt.ids) {
			t.Fatalf("SetOnlineCount(%d): ids = %v, want %v", tt.target, ids, tt.ids)
		}
		for i := range ids {
			if ids[i] != tt.ids[i] {
				t.Errorf("SetOnlineCount(%d): ids = %v, want %v", tt.target, ids, tt.ids)
				break
			}
		}
	}
}

func TestRunAccounting(t *testing.T) {
	cpu := newTestCPU(t)
	if err := cpu.SetFreq(0, 1_036_800*KHz); err != nil {
		t.Fatal(err)
	}
	// 1 ms fully busy at 1.0368 GHz ≈ 1.0368e6 cycles.
	cycles, err := cpu.Run(0, 1_000_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(1_036_800)
	if cycles != want {
		t.Errorf("cycles = %d, want %d", cycles, want)
	}
	snap := cpu.Snapshot()
	if snap[0].State != StateActive {
		t.Errorf("busy core state = %v, want active", snap[0].State)
	}
	if snap[0].BusyCycles != want {
		t.Errorf("accumulated cycles = %d, want %d", snap[0].BusyCycles, want)
	}
	// An idle window flips the core back to idle.
	if _, err := cpu.Run(0, 0, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Snapshot()[0].State; got != StateIdle {
		t.Errorf("idle core state = %v, want idle", got)
	}
}

func TestRunOnOfflineCore(t *testing.T) {
	cpu := newTestCPU(t)
	if err := cpu.Offline(3); err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Run(3, 1000, 1000); !errors.Is(err, ErrCoreOffline) {
		t.Errorf("Run on offline core error = %v, want ErrCoreOffline", err)
	}
}

func TestRunClampsBusyToWindow(t *testing.T) {
	cpu := newTestCPU(t)
	c1, err := cpu.Run(0, 2_000_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := cpu.Run(1, 1_000_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Errorf("clamped busy executed %d cycles, full window executed %d", c1, c2)
	}
}

func TestCapacityCyclesPerSec(t *testing.T) {
	cpu := newTestCPU(t)
	if err := cpu.SetFreqAll(300 * MHz); err != nil {
		t.Fatal(err)
	}
	if got, want := cpu.CapacityCyclesPerSec(), 4*300e6; got != want {
		t.Errorf("capacity = %g, want %g", got, want)
	}
	if err := cpu.SetOnlineCount(2); err != nil {
		t.Fatal(err)
	}
	if got, want := cpu.CapacityCyclesPerSec(), 2*300e6; got != want {
		t.Errorf("capacity after offlining = %g, want %g", got, want)
	}
}

func TestCoreStateString(t *testing.T) {
	tests := []struct {
		s    CoreState
		want string
	}{
		{StateOffline, "offline"},
		{StateIdle, "idle"},
		{StateActive, "active"},
		{CoreState(42), "CoreState(42)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}

// TestRunBatchMatchesRunLoop: a batch commit must be bit-identical to the
// equivalent sequence of per-core Run calls — same cycles, same states,
// same snapshots.
func TestRunBatchMatchesRunLoop(t *testing.T) {
	loop := newTestCPU(t)
	batch := newTestCPU(t)
	for _, cpu := range []*CPU{loop, batch} {
		if err := cpu.SetFreq(1, 1_036_800*KHz); err != nil {
			t.Fatal(err)
		}
		if err := cpu.Offline(3); err != nil {
			t.Fatal(err)
		}
	}
	const window = 1_000_000
	// Mixed load: busy, partial, idle, offline-with-zero; the last entry
	// also exercises clamping (busy > window).
	busy := []uint64{window, 417_000, 0, 0}
	busy[0] = window + 5_000 // clamped
	for id, b := range busy {
		if id == 3 {
			continue // offline: the old loop never called Run there
		}
		if _, err := loop.Run(id, b, window); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.RunBatch(busy, window); err != nil {
		t.Fatal(err)
	}
	a, b := loop.Snapshot(), batch.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("core %d: loop %+v != batch %+v", i, a[i], b[i])
		}
	}
}

// TestRunBatchRejectsOfflineWork: placing work on an offline core is a
// scheduler bug and must fail loudly, exactly like Run.
func TestRunBatchRejectsOfflineWork(t *testing.T) {
	cpu := newTestCPU(t)
	if err := cpu.Offline(3); err != nil {
		t.Fatal(err)
	}
	err := cpu.RunBatch([]uint64{0, 0, 0, 1}, 1_000_000)
	if !errors.Is(err, ErrCoreOffline) {
		t.Errorf("RunBatch(offline work) error = %v, want ErrCoreOffline", err)
	}
	if err := cpu.RunBatch([]uint64{0, 0, 0}, 1_000_000); !errors.Is(err, ErrInvalidCore) {
		t.Errorf("RunBatch(short slice) error = %v, want ErrInvalidCore", err)
	}
}
