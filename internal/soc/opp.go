// Package soc models the system-on-chip substrate the paper's policies act
// on: per-core clocks and power states, operating performance points (OPPs),
// and platform profiles for the devices measured in the thesis.
//
// Governors never touch hardware directly; they observe utilization and
// program frequency and online state through the same narrow surface Linux
// exposes via sysfs, which is what makes the simulated SoC a faithful
// substitute for a rooted Nexus 5.
package soc

import (
	"errors"
	"fmt"
	"sort"
)

// Hz is a CPU frequency in hertz.
type Hz uint64

// Common frequency units.
const (
	KHz Hz = 1_000
	MHz Hz = 1_000_000
	GHz Hz = 1_000_000_000
)

// String renders a frequency in the most natural unit.
func (f Hz) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.4gGHz", float64(f)/float64(GHz))
	case f >= MHz:
		return fmt.Sprintf("%.4gMHz", float64(f)/float64(MHz))
	case f >= KHz:
		return fmt.Sprintf("%.4gkHz", float64(f)/float64(KHz))
	default:
		return fmt.Sprintf("%dHz", uint64(f))
	}
}

// Volt is a supply voltage in volts.
type Volt float64

// OPP is one operating performance point: a frequency and the minimum
// voltage that sustains it (the DVFS principle of §2.2.1).
type OPP struct {
	Freq Hz
	Volt Volt
}

// OPPTable is the ordered list of operating points a core supports.
// Tables are immutable after construction.
type OPPTable struct {
	points []OPP
}

// ErrEmptyTable is returned when constructing a table with no points.
var ErrEmptyTable = errors.New("soc: OPP table must contain at least one point")

// NewOPPTable validates and constructs an OPP table. Points are sorted by
// frequency; duplicate frequencies, non-positive values, or voltages that
// decrease as frequency increases are rejected, since a governor driving
// such a table would make physically meaningless decisions.
func NewOPPTable(points []OPP) (*OPPTable, error) {
	if len(points) == 0 {
		return nil, ErrEmptyTable
	}
	sorted := make([]OPP, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Freq < sorted[j].Freq })
	for i, p := range sorted {
		if p.Freq == 0 {
			return nil, fmt.Errorf("soc: OPP %d has zero frequency", i)
		}
		if p.Volt <= 0 {
			return nil, fmt.Errorf("soc: OPP %d (%v) has non-positive voltage %v", i, p.Freq, p.Volt)
		}
		if i > 0 {
			if p.Freq == sorted[i-1].Freq {
				return nil, fmt.Errorf("soc: duplicate OPP frequency %v", p.Freq)
			}
			if p.Volt < sorted[i-1].Volt {
				return nil, fmt.Errorf("soc: voltage not monotone: %v@%v after %v@%v",
					p.Volt, p.Freq, sorted[i-1].Volt, sorted[i-1].Freq)
			}
		}
	}
	return &OPPTable{points: sorted}, nil
}

// MustOPPTable is NewOPPTable for static, known-good tables; it panics on
// error and is intended for package-level platform definitions only.
func MustOPPTable(points []OPP) *OPPTable {
	t, err := NewOPPTable(points)
	if err != nil {
		panic(err)
	}
	return t
}

// Len reports the number of operating points.
func (t *OPPTable) Len() int { return len(t.points) }

// Min returns the lowest-frequency operating point.
func (t *OPPTable) Min() OPP { return t.points[0] }

// Max returns the highest-frequency operating point.
func (t *OPPTable) Max() OPP { return t.points[len(t.points)-1] }

// At returns the i-th operating point in ascending frequency order.
func (t *OPPTable) At(i int) OPP { return t.points[i] }

// Points returns a copy of the operating points in ascending order.
func (t *OPPTable) Points() []OPP {
	out := make([]OPP, len(t.points))
	copy(out, t.points)
	return out
}

// Frequencies returns every supported frequency in ascending order.
func (t *OPPTable) Frequencies() []Hz {
	out := make([]Hz, len(t.points))
	for i, p := range t.points {
		out[i] = p.Freq
	}
	return out
}

// IndexOf returns the position of freq in the table, or -1 if the exact
// frequency is not a supported operating point.
func (t *OPPTable) IndexOf(freq Hz) int {
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].Freq >= freq })
	if i < len(t.points) && t.points[i].Freq == freq {
		return i
	}
	return -1
}

// Contains reports whether freq is a supported operating point.
func (t *OPPTable) Contains(freq Hz) bool { return t.IndexOf(freq) >= 0 }

// VoltageFor returns the supply voltage of the given operating frequency.
// The frequency must be a table entry; use CeilFreq/FloorFreq first when
// mapping a computed target onto the table.
func (t *OPPTable) VoltageFor(freq Hz) (Volt, error) {
	if i := t.IndexOf(freq); i >= 0 {
		return t.points[i].Volt, nil
	}
	return 0, fmt.Errorf("soc: %v is not an operating point", freq)
}

// CeilFreq maps a desired frequency to the lowest supported operating point
// that is >= target. Targets above the maximum clamp to the maximum. This is
// how cpufreq resolves CPUFREQ_RELATION_L.
//
//mobicore:hotpath
func (t *OPPTable) CeilFreq(target Hz) OPP {
	//mobilint:ignore sort.Search predicate does not escape; stack-allocated
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].Freq >= target })
	if i == len(t.points) {
		return t.Max()
	}
	return t.points[i]
}

// FloorFreq maps a desired frequency to the highest supported operating
// point that is <= target. Targets below the minimum clamp to the minimum.
// This is how cpufreq resolves CPUFREQ_RELATION_H.
func (t *OPPTable) FloorFreq(target Hz) OPP {
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].Freq > target })
	if i == 0 {
		return t.Min()
	}
	return t.points[i-1]
}

// StepUp returns the operating point n steps above freq, clamped to the
// table's maximum. freq is first resolved with CeilFreq.
func (t *OPPTable) StepUp(freq Hz, n int) OPP {
	i := t.indexOfResolved(freq)
	i += n
	if i >= len(t.points) {
		i = len(t.points) - 1
	}
	if i < 0 {
		i = 0
	}
	return t.points[i]
}

// StepDown returns the operating point n steps below freq, clamped to the
// table's minimum.
func (t *OPPTable) StepDown(freq Hz, n int) OPP {
	return t.StepUp(freq, -n)
}

func (t *OPPTable) indexOfResolved(freq Hz) int {
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i].Freq >= freq })
	if i == len(t.points) {
		return len(t.points) - 1
	}
	return i
}
