package soc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testTable(t *testing.T) *OPPTable {
	t.Helper()
	return MSM8974Table()
}

func TestNewOPPTableValidation(t *testing.T) {
	tests := []struct {
		name    string
		points  []OPP
		wantErr bool
	}{
		{"empty", nil, true},
		{"single", []OPP{{Freq: 300 * MHz, Volt: 0.9}}, false},
		{"zero frequency", []OPP{{Freq: 0, Volt: 0.9}}, true},
		{"zero voltage", []OPP{{Freq: 300 * MHz, Volt: 0}}, true},
		{"negative voltage", []OPP{{Freq: 300 * MHz, Volt: -1}}, true},
		{"duplicate frequency", []OPP{{Freq: 300 * MHz, Volt: 0.9}, {Freq: 300 * MHz, Volt: 1.0}}, true},
		{"voltage inversion", []OPP{{Freq: 300 * MHz, Volt: 1.0}, {Freq: 600 * MHz, Volt: 0.9}}, true},
		{"unsorted input accepted", []OPP{{Freq: 600 * MHz, Volt: 1.0}, {Freq: 300 * MHz, Volt: 0.9}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewOPPTable(tt.points)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewOPPTable(%v) error = %v, wantErr %v", tt.points, err, tt.wantErr)
			}
		})
	}
}

func TestMSM8974TableShape(t *testing.T) {
	table := testTable(t)
	if got, want := table.Len(), 14; got != want {
		t.Fatalf("table has %d OPPs, want %d (Table 1: 14 frequencies)", got, want)
	}
	if got, want := table.Min().Freq, 300*MHz; got != want {
		t.Errorf("min frequency = %v, want %v", got, want)
	}
	if got, want := table.Max().Freq, 2_265_600*KHz; got != want {
		t.Errorf("max frequency = %v, want %v", got, want)
	}
	if got, want := table.Min().Volt, Volt(0.9); got != want {
		t.Errorf("min voltage = %v, want %v", got, want)
	}
	if got, want := table.Max().Volt, Volt(1.2); got != want {
		t.Errorf("max voltage = %v, want %v", got, want)
	}
}

func TestOPPTableMonotonicity(t *testing.T) {
	table := testTable(t)
	pts := table.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].Freq <= pts[i-1].Freq {
			t.Errorf("frequency not strictly increasing at %d: %v after %v", i, pts[i].Freq, pts[i-1].Freq)
		}
		if pts[i].Volt < pts[i-1].Volt {
			t.Errorf("voltage decreasing at %d: %v after %v", i, pts[i].Volt, pts[i-1].Volt)
		}
	}
}

func TestCeilFloorFreq(t *testing.T) {
	table := testTable(t)
	tests := []struct {
		target    Hz
		wantCeil  Hz
		wantFloor Hz
	}{
		{0, 300 * MHz, 300 * MHz},
		{300 * MHz, 300 * MHz, 300 * MHz},
		{301 * MHz, 422_400 * KHz, 300 * MHz},
		{1 * GHz, 1_036_800 * KHz, 960_000 * KHz},
		{2_265_600 * KHz, 2_265_600 * KHz, 2_265_600 * KHz},
		{3 * GHz, 2_265_600 * KHz, 2_265_600 * KHz},
	}
	for _, tt := range tests {
		if got := table.CeilFreq(tt.target).Freq; got != tt.wantCeil {
			t.Errorf("CeilFreq(%v) = %v, want %v", tt.target, got, tt.wantCeil)
		}
		if got := table.FloorFreq(tt.target).Freq; got != tt.wantFloor {
			t.Errorf("FloorFreq(%v) = %v, want %v", tt.target, got, tt.wantFloor)
		}
	}
}

func TestCeilFreqProperties(t *testing.T) {
	table := testTable(t)
	fmax := table.Max().Freq
	prop := func(raw uint64) bool {
		target := Hz(raw % uint64(3*GHz))
		got := table.CeilFreq(target)
		if !table.Contains(got.Freq) {
			return false
		}
		// Ceil never returns below the target unless clamped at max.
		if got.Freq < target && got.Freq != fmax {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestFloorFreqProperties(t *testing.T) {
	table := testTable(t)
	fmin := table.Min().Freq
	prop := func(raw uint64) bool {
		target := Hz(raw % uint64(3*GHz))
		got := table.FloorFreq(target)
		if !table.Contains(got.Freq) {
			return false
		}
		if got.Freq > target && got.Freq != fmin {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func TestStepUpDown(t *testing.T) {
	table := testTable(t)
	mid := table.At(5).Freq // 960 MHz
	if got, want := table.StepUp(mid, 1).Freq, table.At(6).Freq; got != want {
		t.Errorf("StepUp(%v,1) = %v, want %v", mid, got, want)
	}
	if got, want := table.StepDown(mid, 1).Freq, table.At(4).Freq; got != want {
		t.Errorf("StepDown(%v,1) = %v, want %v", mid, got, want)
	}
	if got, want := table.StepUp(table.Max().Freq, 3).Freq, table.Max().Freq; got != want {
		t.Errorf("StepUp clamping = %v, want %v", got, want)
	}
	if got, want := table.StepDown(table.Min().Freq, 3).Freq, table.Min().Freq; got != want {
		t.Errorf("StepDown clamping = %v, want %v", got, want)
	}
}

func TestIndexOfAndVoltageFor(t *testing.T) {
	table := testTable(t)
	for i, p := range table.Points() {
		if got := table.IndexOf(p.Freq); got != i {
			t.Errorf("IndexOf(%v) = %d, want %d", p.Freq, got, i)
		}
		v, err := table.VoltageFor(p.Freq)
		if err != nil {
			t.Fatalf("VoltageFor(%v): %v", p.Freq, err)
		}
		if v != p.Volt {
			t.Errorf("VoltageFor(%v) = %v, want %v", p.Freq, v, p.Volt)
		}
	}
	if got := table.IndexOf(301 * MHz); got != -1 {
		t.Errorf("IndexOf(non-OPP) = %d, want -1", got)
	}
	if _, err := table.VoltageFor(301 * MHz); err == nil {
		t.Error("VoltageFor(non-OPP) should fail")
	}
}

func TestUniformTable(t *testing.T) {
	table, err := UniformTable(5, 200*MHz, 1000*MHz, 0.95, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 5 {
		t.Fatalf("len = %d, want 5", table.Len())
	}
	if table.Min().Freq != 200*MHz || table.Max().Freq != 1000*MHz {
		t.Errorf("range = [%v,%v], want [200MHz,1GHz]", table.Min().Freq, table.Max().Freq)
	}
	if _, err := UniformTable(0, 200*MHz, 1000*MHz, 0.95, 1.25); err == nil {
		t.Error("UniformTable(0,...) should fail")
	}
}

func TestHzString(t *testing.T) {
	tests := []struct {
		f    Hz
		want string
	}{
		{2_265_600 * KHz, "2.266GHz"},
		{300 * MHz, "300MHz"},
		{5 * KHz, "5kHz"},
		{42, "42Hz"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", uint64(tt.f), got, tt.want)
		}
	}
}
