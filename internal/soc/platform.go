package soc

// MSM8974Table returns the 14-point OPP table of the Snapdragon 800
// (MSM8974) in the Nexus 5 — 300 MHz to 2.2656 GHz, 0.9 V to 1.2 V
// (Table 1 of the thesis). Voltages follow a mildly convex curve between the
// two endpoints the paper reports, matching Krait 400 PVS-nominal behaviour.
func MSM8974Table() *OPPTable {
	return MustOPPTable([]OPP{
		{Freq: 300_000 * KHz, Volt: 0.900},
		{Freq: 422_400 * KHz, Volt: 0.910},
		{Freq: 652_800 * KHz, Volt: 0.930},
		{Freq: 729_600 * KHz, Volt: 0.940},
		{Freq: 883_200 * KHz, Volt: 0.960},
		{Freq: 960_000 * KHz, Volt: 0.975},
		{Freq: 1_036_800 * KHz, Volt: 0.990},
		{Freq: 1_190_400 * KHz, Volt: 1.010},
		{Freq: 1_267_200 * KHz, Volt: 1.025},
		{Freq: 1_497_600 * KHz, Volt: 1.060},
		{Freq: 1_574_400 * KHz, Volt: 1.075},
		{Freq: 1_728_000 * KHz, Volt: 1.100},
		{Freq: 1_958_400 * KHz, Volt: 1.145},
		{Freq: 2_265_600 * KHz, Volt: 1.200},
	})
}

// MSM8994LittleTable returns the A53 (LITTLE) cluster OPP ladder of a
// Snapdragon 810-class part: 384 MHz to 1.5552 GHz. Voltages follow the
// same mildly convex shape as the calibrated MSM8974 ladder, shifted down
// for the efficiency-tuned 20 nm A53 implementation.
func MSM8994LittleTable() *OPPTable {
	return MustOPPTable([]OPP{
		{Freq: 384_000 * KHz, Volt: 0.800},
		{Freq: 460_800 * KHz, Volt: 0.810},
		{Freq: 600_000 * KHz, Volt: 0.825},
		{Freq: 787_200 * KHz, Volt: 0.850},
		{Freq: 960_000 * KHz, Volt: 0.875},
		{Freq: 1_113_600 * KHz, Volt: 0.900},
		{Freq: 1_248_000 * KHz, Volt: 0.930},
		{Freq: 1_440_000 * KHz, Volt: 0.975},
		{Freq: 1_555_200 * KHz, Volt: 1.000},
	})
}

// MSM8994BigTable returns the A57 (big) cluster OPP ladder of a Snapdragon
// 810-class part: 384 MHz to 1.958 GHz with a steeper voltage ramp — the
// performance cluster pays for its top bins.
func MSM8994BigTable() *OPPTable {
	return MustOPPTable([]OPP{
		{Freq: 384_000 * KHz, Volt: 0.850},
		{Freq: 480_000 * KHz, Volt: 0.865},
		{Freq: 633_600 * KHz, Volt: 0.885},
		{Freq: 768_000 * KHz, Volt: 0.905},
		{Freq: 960_000 * KHz, Volt: 0.935},
		{Freq: 1_248_000 * KHz, Volt: 0.985},
		{Freq: 1_440_000 * KHz, Volt: 1.025},
		{Freq: 1_632_000 * KHz, Volt: 1.070},
		{Freq: 1_824_000 * KHz, Volt: 1.125},
		{Freq: 1_958_400 * KHz, Volt: 1.165},
	})
}

// SM8150SilverTable returns the Kryo 485 Silver (A55-class) efficiency
// cluster ladder of a Snapdragon 855-class part: 300 MHz to 1.7856 GHz.
// The top bins ride the rail hard for an in-order core — the region where
// the Energy/Frequency Convexity Rule makes the gold cluster's low bins
// cheaper per cycle, the crossover EAS placement exists to exploit.
func SM8150SilverTable() *OPPTable {
	return MustOPPTable([]OPP{
		{Freq: 300_000 * KHz, Volt: 0.600},
		{Freq: 576_000 * KHz, Volt: 0.635},
		{Freq: 768_000 * KHz, Volt: 0.665},
		{Freq: 960_000 * KHz, Volt: 0.700},
		{Freq: 1_113_600 * KHz, Volt: 0.740},
		{Freq: 1_305_600 * KHz, Volt: 0.800},
		{Freq: 1_497_600 * KHz, Volt: 0.875},
		{Freq: 1_670_400 * KHz, Volt: 0.960},
		{Freq: 1_785_600 * KHz, Volt: 1.020},
	})
}

// SM8150GoldTable returns the Kryo 485 Gold (A76-class) mid cluster ladder
// of a Snapdragon 855-class part: 710.4 MHz to 2.4192 GHz, with a gentle
// ramp through its low bins (the efficient region a 7 nm out-of-order core
// occupies when it absorbs work the silver cluster would have to run at its
// own top voltage).
func SM8150GoldTable() *OPPTable {
	return MustOPPTable([]OPP{
		{Freq: 710_400 * KHz, Volt: 0.650},
		{Freq: 940_800 * KHz, Volt: 0.670},
		{Freq: 1_171_200 * KHz, Volt: 0.695},
		{Freq: 1_401_600 * KHz, Volt: 0.725},
		{Freq: 1_612_800 * KHz, Volt: 0.760},
		{Freq: 1_804_800 * KHz, Volt: 0.800},
		{Freq: 2_016_000 * KHz, Volt: 0.855},
		{Freq: 2_131_200 * KHz, Volt: 0.890},
		{Freq: 2_323_200 * KHz, Volt: 0.960},
		{Freq: 2_419_200 * KHz, Volt: 1.000},
	})
}

// SM8150PrimeTable returns the single Kryo 485 Prime core's ladder of a
// Snapdragon 855-class part: 825.6 MHz to 2.8416 GHz, the steepest voltage
// ramp on the die — the prime core buys its top bins dearly.
func SM8150PrimeTable() *OPPTable {
	return MustOPPTable([]OPP{
		{Freq: 825_600 * KHz, Volt: 0.680},
		{Freq: 1_056_000 * KHz, Volt: 0.705},
		{Freq: 1_286_400 * KHz, Volt: 0.735},
		{Freq: 1_612_800 * KHz, Volt: 0.780},
		{Freq: 1_804_800 * KHz, Volt: 0.815},
		{Freq: 2_016_000 * KHz, Volt: 0.860},
		{Freq: 2_227_200 * KHz, Volt: 0.915},
		{Freq: 2_419_200 * KHz, Volt: 0.975},
		{Freq: 2_649_600 * KHz, Volt: 1.050},
		{Freq: 2_841_600 * KHz, Volt: 1.120},
	})
}

// UniformTable builds a synthetic table of n evenly spaced frequencies
// between lo and hi with linearly interpolated voltages — useful for the
// older single/dual-core platform profiles of Figure 1 and for tests.
func UniformTable(n int, lo, hi Hz, vlo, vhi Volt) (*OPPTable, error) {
	points := make([]OPP, 0, n)
	for i := 0; i < n; i++ {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		points = append(points, OPP{
			Freq: lo + Hz(frac*float64(hi-lo)),
			Volt: vlo + Volt(frac*float64(vhi-vlo)),
		})
	}
	return NewOPPTable(points)
}
