package soc

// MSM8974Table returns the 14-point OPP table of the Snapdragon 800
// (MSM8974) in the Nexus 5 — 300 MHz to 2.2656 GHz, 0.9 V to 1.2 V
// (Table 1 of the thesis). Voltages follow a mildly convex curve between the
// two endpoints the paper reports, matching Krait 400 PVS-nominal behaviour.
func MSM8974Table() *OPPTable {
	return MustOPPTable([]OPP{
		{Freq: 300_000 * KHz, Volt: 0.900},
		{Freq: 422_400 * KHz, Volt: 0.910},
		{Freq: 652_800 * KHz, Volt: 0.930},
		{Freq: 729_600 * KHz, Volt: 0.940},
		{Freq: 883_200 * KHz, Volt: 0.960},
		{Freq: 960_000 * KHz, Volt: 0.975},
		{Freq: 1_036_800 * KHz, Volt: 0.990},
		{Freq: 1_190_400 * KHz, Volt: 1.010},
		{Freq: 1_267_200 * KHz, Volt: 1.025},
		{Freq: 1_497_600 * KHz, Volt: 1.060},
		{Freq: 1_574_400 * KHz, Volt: 1.075},
		{Freq: 1_728_000 * KHz, Volt: 1.100},
		{Freq: 1_958_400 * KHz, Volt: 1.145},
		{Freq: 2_265_600 * KHz, Volt: 1.200},
	})
}

// UniformTable builds a synthetic table of n evenly spaced frequencies
// between lo and hi with linearly interpolated voltages — useful for the
// older single/dual-core platform profiles of Figure 1 and for tests.
func UniformTable(n int, lo, hi Hz, vlo, vhi Volt) (*OPPTable, error) {
	points := make([]OPP, 0, n)
	for i := 0; i < n; i++ {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		points = append(points, OPP{
			Freq: lo + Hz(frac*float64(hi-lo)),
			Volt: vlo + Volt(frac*float64(vhi-vlo)),
		})
	}
	return NewOPPTable(points)
}
