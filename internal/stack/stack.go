// Package stack resolves policy-stack names to policy.Manager instances:
// the named managers of the thesis ("mobicore", "android-default",
// "oracle") and the composable "<governor>+<hotplug>" forms, each built
// appropriately for homogeneous and heterogeneous (big.LITTLE) platforms.
// It is the single construction path shared by the public facade, the
// fleet driver's name-based specs, and the CLIs, so the set of accepted
// names cannot drift between layers.
package stack

import (
	"fmt"
	"strings"

	"mobicore/internal/core"
	"mobicore/internal/cpufreq"
	"mobicore/internal/hotplug"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/power"
	"mobicore/internal/soc"
)

// Named policy stacks.
const (
	// MobiCore is the paper's contribution: the full energy-model guided
	// hybrid manager (DVFS + DCS + bandwidth in one decision).
	MobiCore = "mobicore"
	// MobiCoreThreshold is MobiCore with the §5.2 threshold rule for core
	// re-evaluation instead of the energy-model search.
	MobiCoreThreshold = "mobicore-threshold"
	// AndroidDefault is the baseline the thesis evaluates against: the
	// ondemand governor plus the default load hotplug.
	AndroidDefault = "android-default"
	// Oracle is the §4.2 exhaustive energy-model optimizer.
	Oracle = "oracle"
)

// Names lists the named stacks (the composable "<governor>+<hotplug>"
// forms are additional).
func Names() []string {
	return []string{AndroidDefault, MobiCore, MobiCoreThreshold, Oracle}
}

// Build resolves a policy name against a platform. On heterogeneous
// platforms MobiCore runs one instance per cluster with an energy-aware
// gate, and stock governors run one instance per cluster as independent
// cpufreq policy domains, as Linux does. Each call returns a fresh
// manager, so one name can seed many concurrent sessions.
func Build(name string, plat platform.Platform) (policy.Manager, error) {
	if name == "" {
		name = AndroidDefault
	}
	switch name {
	case AndroidDefault:
		if plat.Heterogeneous() {
			return composed("ondemand+load", plat)
		}
		return policy.AndroidDefault(plat.Table)
	case MobiCore:
		if plat.Heterogeneous() {
			return clusteredMobiCore(plat, true)
		}
		model, err := power.NewModel(plat.Power, plat.Table)
		if err != nil {
			return nil, err
		}
		return core.NewWithModel(plat.Table, core.DefaultTunables(), model)
	case MobiCoreThreshold:
		if plat.Heterogeneous() {
			return clusteredMobiCore(plat, false)
		}
		return core.New(plat.Table, core.DefaultTunables())
	case Oracle:
		if plat.Heterogeneous() {
			o, err := core.NewClusteredOracleForPlatform(plat, 0.15)
			if err != nil {
				return nil, err
			}
			return o, nil
		}
		model, err := power.NewModel(plat.Power, plat.Table)
		if err != nil {
			return nil, err
		}
		return core.NewOracle(plat.Table, model, 0.15)
	}
	return composed(name, plat)
}

// clusteredMobiCore builds the per-cluster MobiCore manager; withModel
// attaches each cluster's calibrated energy model for the §4.2 search.
func clusteredMobiCore(plat platform.Platform, withModel bool) (policy.Manager, error) {
	mgr, err := core.NewClusteredForPlatform(plat, core.DefaultTunables(), core.DefaultClusterTunables(), withModel)
	if err != nil {
		return nil, err
	}
	return mgr, nil
}

// composed parses "<governor>+<hotplug>".
func composed(name string, plat platform.Platform) (policy.Manager, error) {
	govName, plugName, ok := strings.Cut(name, "+")
	if !ok || govName == "" || plugName == "" {
		return nil, fmt.Errorf("unknown policy %q (want one of %v or \"governor+hotplug\")",
			name, Names())
	}
	plug, err := buildHotplug(plugName)
	if err != nil {
		return nil, err
	}
	if plat.Heterogeneous() {
		mgr, err := policy.ComposeClustered(govName,
			func(t *soc.OPPTable) (cpufreq.Governor, error) { return cpufreq.New(govName, t) },
			plug, plat.ClusterTables())
		if err != nil {
			return nil, err
		}
		return mgr, nil
	}
	gov, err := cpufreq.New(govName, plat.Table)
	if err != nil {
		return nil, err
	}
	return policy.Compose(gov, plug)
}

// Hotplugs lists the hotplug policy names composable on the right of
// "<governor>+<hotplug>" ("fixed-N" stands for any N >= 1).
func Hotplugs() []string {
	return []string{"load", "mpdecision", "offline", "fixed-N"}
}

func buildHotplug(name string) (hotplug.Policy, error) {
	switch name {
	case "load":
		return hotplug.NewLoad(hotplug.DefaultLoadTunables())
	case "mpdecision":
		return hotplug.MPDecision{}, nil
	case "offline":
		return hotplug.NewOffliner(hotplug.DefaultOfflinerTunables())
	}
	var n int
	if _, err := fmt.Sscanf(name, "fixed-%d", &n); err == nil {
		return hotplug.NewFixed(n)
	}
	return nil, fmt.Errorf("unknown hotplug policy %q (want load, mpdecision, offline, or fixed-N)", name)
}
