package stack

import (
	"testing"

	"mobicore/internal/platform"
)

// TestBuildNamedStacks: every named stack resolves on both a homogeneous
// and a heterogeneous profile, and each call returns a distinct manager
// instance (managers are stateful; the fleet driver builds one per cell).
func TestBuildNamedStacks(t *testing.T) {
	for _, plat := range []platform.Platform{platform.Nexus5(), platform.Nexus6P()} {
		for _, name := range append(Names(), "", "interactive+load", "userspace+fixed-2",
			"pin-max+mpdecision", "pin-min+offline", "pin-mid+load", "ondemand+offline") {
			a, err := Build(name, plat)
			if err != nil {
				t.Fatalf("Build(%q, %s): %v", name, plat.Name, err)
			}
			b, err := Build(name, plat)
			if err != nil {
				t.Fatalf("Build(%q, %s) second call: %v", name, plat.Name, err)
			}
			if a == b {
				t.Errorf("Build(%q, %s) returned the same instance twice", name, plat.Name)
			}
		}
	}
}

func TestBuildRejectsUnknown(t *testing.T) {
	for _, name := range []string{"nope", "ondemand", "ondemand+", "+load", "ondemand+nope", "pin-low+load"} {
		if _, err := Build(name, platform.Nexus5()); err == nil {
			t.Errorf("Build(%q) accepted", name)
		}
	}
}
