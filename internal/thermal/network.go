package thermal

import (
	"errors"
	"fmt"
	"math"
	"time"

	"mobicore/internal/soc"
)

// Network joins per-cluster thermal zones on one die. Each zone integrates
// its own cluster's power plus a configurable fraction of its neighbors'
// (the shared-die coupling: heat spreads laterally through the substrate),
// and drives its own msm_thermal-style cap on its cluster's OPP ladder.
//
// This is the physically honest model for an asymmetric part like the
// Snapdragon 810: the A57 cluster's zone reaches its trip long before the
// A53s', so the big cores throttle while the LITTLE cores run uncapped —
// the behaviour a single die-wide zone (which caps every domain at once)
// cannot express. A single-zone network degenerates exactly to the flat
// Zone model: with no neighbors the coupling term is identically zero and
// Step reduces to Zone.Step bit for bit.
//
// Not safe for concurrent use; owned by the simulation loop.
type Network struct {
	zones    []*Zone
	coupling float64
}

// NewNetwork builds one zone per cluster from parallel params/tables slices.
// coupling in [0,1] is the fraction of every other zone's power each zone
// additionally integrates (0 = thermally isolated islands, 1 = one shared
// die where every zone sees all power).
func NewNetwork(params []Params, tables []*soc.OPPTable, coupling float64) (*Network, error) {
	if len(params) == 0 {
		return nil, errors.New("thermal: network needs at least one zone")
	}
	if len(params) != len(tables) {
		return nil, fmt.Errorf("thermal: %d zone params for %d tables", len(params), len(tables))
	}
	if coupling < 0 || coupling > 1 {
		return nil, fmt.Errorf("thermal: coupling %v outside [0,1]", coupling)
	}
	zones := make([]*Zone, len(params))
	for i := range params {
		z, err := NewZone(params[i], tables[i])
		if err != nil {
			return nil, fmt.Errorf("thermal: zone %d: %w", i, err)
		}
		zones[i] = z
	}
	return &Network{zones: zones, coupling: coupling}, nil
}

// Zones returns the number of zones in the network.
func (n *Network) Zones() int { return len(n.zones) }

// ZoneAt returns zone i for callers that need the full per-zone API.
func (n *Network) ZoneAt(i int) *Zone { return n.zones[i] }

// Coupling returns the neighbor-power fraction.
func (n *Network) Coupling() float64 { return n.coupling }

// Step advances every zone by dt. watts carries each zone's own cluster
// power, indexed like the zones; zone i integrates
// watts[i] + coupling·Σ_{j≠i} watts[j].
func (n *Network) Step(watts []float64, dt time.Duration) error {
	if len(watts) != len(n.zones) {
		return fmt.Errorf("thermal: %d watt entries for %d zones", len(watts), len(n.zones))
	}
	var sum float64
	for _, w := range watts {
		sum += w
	}
	for i, z := range n.zones {
		z.Step(watts[i]+n.coupling*(sum-watts[i]), dt)
	}
	return nil
}

// TempC returns zone i's current temperature.
func (n *Network) TempC(i int) float64 { return n.zones[i].TempC() }

// MaxTempC returns the hottest zone's temperature — the aggregate the
// single-zone model used to report.
func (n *Network) MaxTempC() float64 {
	max := math.Inf(-1)
	for _, z := range n.zones {
		if t := z.TempC(); t > max {
			max = t
		}
	}
	return max
}

// Throttling reports whether zone i's cap is engaged below its ladder max.
func (n *Network) Throttling(i int) bool { return n.zones[i].Throttling() }

// AnyThrottling reports whether any zone has a cap engaged.
func (n *Network) AnyThrottling() bool {
	for _, z := range n.zones {
		if z.Throttling() {
			return true
		}
	}
	return false
}

// CapFreq returns zone i's current frequency cap on its own ladder.
func (n *Network) CapFreq(i int) soc.Hz { return n.zones[i].CapFreq() }

// HeadroomC returns zone i's margin to its trip point in °C — the
// governor-visible thermal-pressure signal. Negative while above trip,
// +Inf when the zone's throttle is disabled.
func (n *Network) HeadroomC(i int) float64 { return n.zones[i].HeadroomC() }

// Clamp applies zone i's cap to a requested frequency on the zone's own
// cluster ladder.
func (n *Network) Clamp(i int, req soc.Hz) soc.Hz { return n.zones[i].Clamp(req) }

// CapGen sums every zone's cap generation: the result changes whenever any
// zone's throttle cap moves, so per-tick callers can skip re-clamping while
// it holds still.
//
//mobicore:hotpath
func (n *Network) CapGen() uint64 {
	var g uint64
	for _, z := range n.zones {
		g += z.capGen
	}
	return g
}

// Reset returns every zone to ambient with no cap.
func (n *Network) Reset() {
	for _, z := range n.zones {
		z.Reset()
	}
}
