package thermal

import (
	"math"
	"testing"
	"time"

	"mobicore/internal/soc"
)

// littleParams/bigParams mirror the Nexus 6P calibration shape: the big
// zone has higher thermal resistance and a lower trip than the LITTLE one.
func littleParams() Params {
	return Params{
		AmbientC:        22,
		ResistanceKPerW: 9.0,
		TimeConstant:    10 * time.Second,
		TripC:           70,
		ReleaseC:        66,
		StepPeriod:      time.Second,
	}
}

func bigParams() Params {
	return Params{
		AmbientC:        22,
		ResistanceKPerW: 14.0,
		TimeConstant:    8 * time.Second,
		TripC:           45,
		ReleaseC:        41,
		StepPeriod:      time.Second,
	}
}

func newTestNetwork(t *testing.T, coupling float64) *Network {
	t.Helper()
	n, err := NewNetwork(
		[]Params{littleParams(), bigParams()},
		[]*soc.OPPTable{soc.MSM8994LittleTable(), soc.MSM8994BigTable()},
		coupling,
	)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewNetworkRejectsBadInputs(t *testing.T) {
	tables := []*soc.OPPTable{soc.MSM8974Table()}
	params := []Params{littleParams()}
	if _, err := NewNetwork(nil, nil, 0); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := NewNetwork(params, []*soc.OPPTable{soc.MSM8974Table(), soc.MSM8974Table()}, 0); err == nil {
		t.Error("mismatched params/tables accepted")
	}
	if _, err := NewNetwork(params, tables, -0.1); err == nil {
		t.Error("negative coupling accepted")
	}
	if _, err := NewNetwork(params, tables, 1.1); err == nil {
		t.Error("coupling above 1 accepted")
	}
	bad := params[0]
	bad.ResistanceKPerW = 0
	if _, err := NewNetwork([]Params{bad}, tables, 0); err == nil {
		t.Error("invalid zone params accepted")
	}
}

// TestSingleZoneNetworkMatchesFlatZone: a one-zone network must reproduce
// the flat Zone model bit for bit — the Nexus 5 backward-compatibility
// contract. The coupling term is identically zero with no neighbors.
func TestSingleZoneNetworkMatchesFlatZone(t *testing.T) {
	p := nexus5Params()
	table := soc.MSM8974Table()
	flat, err := NewZone(p, table)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork([]Params{p}, []*soc.OPPTable{table}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	watts := []float64{0.1, 2.4, 3.0, 1.55, 0.0, 2.4, 0.7}
	for i := 0; i < 500; i++ {
		w := watts[i%len(watts)]
		flat.Step(w, 250*time.Millisecond)
		if err := net.Step([]float64{w}, 250*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if net.TempC(0) != flat.TempC() {
			t.Fatalf("step %d: network temp %v != flat zone temp %v", i, net.TempC(0), flat.TempC())
		}
		if net.CapFreq(0) != flat.CapFreq() || net.Throttling(0) != flat.Throttling() {
			t.Fatalf("step %d: network cap %v/%v != flat cap %v/%v",
				i, net.CapFreq(0), net.Throttling(0), flat.CapFreq(), flat.Throttling())
		}
	}
}

// TestAsymmetricThrottle: under a sustained load that heats the big zone
// past its trip, the big cluster caps while the LITTLE cluster — cooler
// zone, higher trip — stays uncapped on its full ladder.
func TestAsymmetricThrottle(t *testing.T) {
	n := newTestNetwork(t, 0.3)
	for i := 0; i < 120; i++ {
		if err := n.Step([]float64{0.9, 2.5}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if !n.Throttling(1) {
		t.Fatalf("big zone at %.1f C (trip %v) not throttling", n.TempC(1), bigParams().TripC)
	}
	if n.Throttling(0) {
		t.Errorf("LITTLE zone throttling at %.1f C, trip is %v", n.TempC(0), littleParams().TripC)
	}
	if got, want := n.CapFreq(0), soc.MSM8994LittleTable().Max().Freq; got != want {
		t.Errorf("LITTLE cap %v, want uncapped %v", got, want)
	}
	if n.CapFreq(1) >= soc.MSM8994BigTable().Max().Freq {
		t.Error("big cluster cap did not move below its ladder max")
	}
	if !n.AnyThrottling() {
		t.Error("AnyThrottling false while the big zone is capped")
	}
	if n.MaxTempC() != n.TempC(1) {
		t.Errorf("MaxTempC %v should be the big zone's %v", n.MaxTempC(), n.TempC(1))
	}
	if n.HeadroomC(1) > 0 {
		t.Errorf("big zone above trip should have negative headroom, got %v", n.HeadroomC(1))
	}
	if n.HeadroomC(0) <= 0 {
		t.Errorf("cool LITTLE zone should have positive headroom, got %v", n.HeadroomC(0))
	}
}

// TestIndependentRelease: after the big zone's load is removed, its cap
// releases on its own hysteresis regardless of the other zone's state.
func TestIndependentRelease(t *testing.T) {
	n := newTestNetwork(t, 0.3)
	for i := 0; i < 120; i++ {
		if err := n.Step([]float64{0.9, 2.5}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if !n.Throttling(1) {
		t.Fatal("setup: big zone not throttling")
	}
	// Big idles, LITTLE keeps its load: the big zone must cool below its
	// release point and lift its cap while LITTLE continues unthrottled.
	for i := 0; i < 600; i++ {
		if err := n.Step([]float64{0.9, 0.05}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if n.Throttling(1) {
		t.Errorf("big zone still capped at %.1f C after cooling (release %v)", n.TempC(1), bigParams().ReleaseC)
	}
	if n.Throttling(0) {
		t.Error("LITTLE zone throttled by its neighbor's recovery")
	}
	if got, want := n.CapFreq(1), soc.MSM8994BigTable().Max().Freq; got != want {
		t.Errorf("released big cap %v, want ladder max %v", got, want)
	}
}

// TestCouplingRaisesNeighborMonotonically: with the LITTLE cluster idle,
// increasing coupling fractions must monotonically raise the LITTLE zone's
// steady temperature under the same big-cluster power.
func TestCouplingRaisesNeighborMonotonically(t *testing.T) {
	couplings := []float64{0, 0.15, 0.3, 0.6, 1.0}
	var prev float64 = -math.MaxFloat64
	for _, c := range couplings {
		n := newTestNetwork(t, c)
		for i := 0; i < 300; i++ {
			if err := n.Step([]float64{0, 2.0}, time.Second); err != nil {
				t.Fatal(err)
			}
		}
		got := n.TempC(0)
		if got <= prev {
			t.Errorf("coupling %v: LITTLE temp %.2f C not above %.2f C at lower coupling", c, got, prev)
		}
		prev = got
	}
	// Zero coupling leaves the idle neighbor exactly at ambient.
	n := newTestNetwork(t, 0)
	for i := 0; i < 300; i++ {
		if err := n.Step([]float64{0, 2.0}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if n.TempC(0) != littleParams().AmbientC {
		t.Errorf("uncoupled idle zone at %.2f C, want ambient", n.TempC(0))
	}
}

// TestNetworkStepLengthMismatch: feeding the wrong number of watt entries
// is an error, not a silent truncation.
func TestNetworkStepLengthMismatch(t *testing.T) {
	n := newTestNetwork(t, 0.3)
	if err := n.Step([]float64{1.0}, time.Second); err == nil {
		t.Error("short watts slice accepted")
	}
}

// TestNetworkReset returns every zone to ambient with no caps.
func TestNetworkReset(t *testing.T) {
	n := newTestNetwork(t, 0.3)
	for i := 0; i < 120; i++ {
		if err := n.Step([]float64{0.9, 2.5}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	n.Reset()
	if n.AnyThrottling() {
		t.Error("reset network still throttling")
	}
	if n.TempC(0) != 22 || n.TempC(1) != 22 {
		t.Errorf("reset temps %.1f/%.1f, want ambient", n.TempC(0), n.TempC(1))
	}
}
