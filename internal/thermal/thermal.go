// Package thermal models the die/skin temperature of the handset with a
// first-order RC network and implements an msm_thermal-style frequency-cap
// throttle. The thermal path matters twice in the thesis: Figure 2's IR
// contrast between the Nexus S and Nexus 5, and the sub-linear core scaling
// of Figure 4, which on real hardware is largely the thermal driver clipping
// sustained multi-core turbo.
package thermal

import (
	"errors"
	"math"
	"time"

	"mobicore/internal/soc"
)

// Params describes one platform's thermal characteristics.
type Params struct {
	// AmbientC is the environment temperature in °C.
	AmbientC float64
	// ResistanceKPerW is the steady-state thermal resistance from the CPU
	// area to ambient: T_ss = ambient + P · R.
	ResistanceKPerW float64
	// TimeConstant is the RC time constant τ; the die covers ~63% of the
	// distance to steady state in one τ.
	TimeConstant time.Duration

	// TripC engages throttling; ReleaseC disengages it (hysteresis).
	// Setting TripC to 0 (or +Inf semantics via a huge value) disables
	// throttling.
	TripC    float64
	ReleaseC float64
	// StepPeriod is how often the throttle moves the cap by one OPP.
	StepPeriod time.Duration
}

// Validate reports the first nonsensical field.
func (p Params) Validate() error {
	switch {
	case p.ResistanceKPerW <= 0:
		return errors.New("thermal: ResistanceKPerW must be positive")
	case p.TimeConstant <= 0:
		return errors.New("thermal: TimeConstant must be positive")
	case p.TripC != 0 && p.ReleaseC > p.TripC:
		return errors.New("thermal: ReleaseC must not exceed TripC")
	case p.TripC != 0 && p.StepPeriod <= 0:
		return errors.New("thermal: StepPeriod must be positive when throttling")
	}
	return nil
}

// Zone integrates temperature and drives the throttle cap. Not safe for
// concurrent use; owned by the simulation loop.
type Zone struct {
	params Params
	table  *soc.OPPTable

	tempC      float64
	capIndex   int // index into the OPP table; len-1 means uncapped
	sinceStep  time.Duration
	throttling bool

	// alpha caches the exact-integration coefficient 1−e^(−dt/τ) for the
	// last step size seen. Simulation loops step with a fixed tick, so the
	// exp evaluation happens once per session instead of once per tick; a
	// recomputed coefficient for the same dt is the identical float, so
	// caching never changes a trajectory.
	alphaDt time.Duration
	alpha   float64

	// capGen counts cap movements. The simulation compares generations to
	// skip re-clamping frequencies on the (vast majority of) steps where
	// the throttle did not move.
	capGen uint64
}

// NewZone builds a thermal zone starting at ambient with no cap.
func NewZone(params Params, table *soc.OPPTable) (*Zone, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if table == nil || table.Len() == 0 {
		return nil, soc.ErrEmptyTable
	}
	return &Zone{
		params:   params,
		table:    table,
		tempC:    params.AmbientC,
		capIndex: table.Len() - 1,
	}, nil
}

// TempC returns the current modelled temperature.
func (z *Zone) TempC() float64 { return z.tempC }

// Throttling reports whether the cap is currently engaged below max.
func (z *Zone) Throttling() bool { return z.capIndex < z.table.Len()-1 }

// CapFreq returns the maximum frequency currently allowed.
func (z *Zone) CapFreq() soc.Hz { return z.table.At(z.capIndex).Freq }

// SteadyStateC returns the temperature the zone converges to if watts are
// held forever: ambient + P·R.
func (z *Zone) SteadyStateC(watts float64) float64 {
	return z.params.AmbientC + watts*z.params.ResistanceKPerW
}

// HeadroomC returns the margin to the trip point in °C: positive while the
// zone is cool, negative above trip, +Inf when throttling is disabled. This
// is the thermal-pressure signal governors consume.
func (z *Zone) HeadroomC() float64 {
	if z.params.TripC == 0 {
		return math.Inf(1)
	}
	return z.params.TripC - z.tempC
}

// Step advances the model by dt under a dissipation of watts and updates
// the throttle cap. dT/dt = (T_ss − T)/τ, integrated exactly.
func (z *Zone) Step(watts float64, dt time.Duration) {
	if dt <= 0 {
		return
	}
	tss := z.SteadyStateC(watts)
	if dt != z.alphaDt {
		z.alphaDt = dt
		z.alpha = 1 - math.Exp(-dt.Seconds()/z.params.TimeConstant.Seconds())
	}
	z.tempC += (tss - z.tempC) * z.alpha

	if z.params.TripC == 0 {
		return // throttling disabled
	}
	z.sinceStep += dt
	if z.sinceStep < z.params.StepPeriod {
		return
	}
	z.sinceStep = 0
	switch {
	case z.tempC >= z.params.TripC:
		z.throttling = true
		if z.capIndex > 0 {
			z.capIndex--
			z.capGen++
		}
	case z.tempC <= z.params.ReleaseC:
		z.throttling = false
		if z.capIndex < z.table.Len()-1 {
			z.capIndex++
			z.capGen++
		}
	case z.throttling:
		// Between release and trip while hot: hold the cap.
	}
}

// CapGen returns a counter that advances every time the throttle cap moves
// (in either direction). Callers that cache clamped frequencies can compare
// generations instead of re-clamping on every step.
func (z *Zone) CapGen() uint64 { return z.capGen }

// Clamp applies the current cap to a requested frequency, returning the
// highest allowed operating point at or below the request.
func (z *Zone) Clamp(req soc.Hz) soc.Hz {
	return z.ClampOn(z.table, req)
}

// ClampOn applies the current cap to a request, resolving the capped value
// onto table — on a big.LITTLE part one skin sensor caps every frequency
// domain, but each domain snaps to its own ladder.
func (z *Zone) ClampOn(table *soc.OPPTable, req soc.Hz) soc.Hz {
	cap := z.CapFreq()
	if req <= cap {
		return req
	}
	return table.FloorFreq(cap).Freq
}

// Reset returns the zone to ambient with no cap. The cap generation
// advances (the cap may have moved), so generation-caching callers re-clamp.
func (z *Zone) Reset() {
	z.tempC = z.params.AmbientC
	z.capIndex = z.table.Len() - 1
	z.sinceStep = 0
	z.throttling = false
	z.capGen++
}
