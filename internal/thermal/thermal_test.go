package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mobicore/internal/soc"
)

func nexus5Params() Params {
	return Params{
		AmbientC:        22,
		ResistanceKPerW: 8.4,
		TimeConstant:    15 * time.Second,
		TripC:           36,
		ReleaseC:        34,
		StepPeriod:      time.Second,
	}
}

func newZone(t *testing.T, p Params) *Zone {
	t.Helper()
	z, err := NewZone(p, soc.MSM8974Table())
	if err != nil {
		t.Fatal(err)
	}
	return z
}

func TestParamsValidate(t *testing.T) {
	good := nexus5Params()
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero resistance", func(p *Params) { p.ResistanceKPerW = 0 }},
		{"zero time constant", func(p *Params) { p.TimeConstant = 0 }},
		{"release above trip", func(p *Params) { p.ReleaseC = p.TripC + 1 }},
		{"zero step period with trip", func(p *Params) { p.StepPeriod = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
	// Throttling disabled: release/step constraints do not apply.
	disabled := good
	disabled.TripC = 0
	disabled.ReleaseC = 0
	disabled.StepPeriod = 0
	if err := disabled.Validate(); err != nil {
		t.Errorf("throttle-disabled params rejected: %v", err)
	}
}

// TestSteadyStateConvergence: holding constant power, the zone converges to
// ambient + P·R — the Fig. 2a anchor (2.40 W → 42.1 °C at 22 °C ambient).
func TestSteadyStateConvergence(t *testing.T) {
	p := nexus5Params()
	p.TripC = 0 // no throttle: pure RC response
	z := newZone(t, p)
	const watts = 2.40
	for i := 0; i < 10000; i++ {
		z.Step(watts, 10*time.Millisecond)
	}
	want := 22 + watts*8.4
	if math.Abs(z.TempC()-want) > 0.1 {
		t.Errorf("steady state = %.2f C, want %.2f C", z.TempC(), want)
	}
	if math.Abs(want-42.16) > 0.2 {
		t.Errorf("anchor drifted: predicted %.2f C, paper 42.1 C", want)
	}
}

// TestExactIntegration: the exponential update must match the closed-form
// solution regardless of step size.
func TestExactIntegration(t *testing.T) {
	p := nexus5Params()
	p.TripC = 0
	coarse := newZone(t, p)
	fine := newZone(t, p)
	const watts = 2.0
	coarse.Step(watts, 10*time.Second)
	for i := 0; i < 10000; i++ {
		fine.Step(watts, time.Millisecond)
	}
	if math.Abs(coarse.TempC()-fine.TempC()) > 0.01 {
		t.Errorf("step-size dependence: coarse %.4f vs fine %.4f", coarse.TempC(), fine.TempC())
	}
}

func TestThrottleEngagesAndReleases(t *testing.T) {
	z := newZone(t, nexus5Params())
	table := soc.MSM8974Table()
	// Heat: 2.4 W steady state is 42.2 C, above the 36 C trip.
	for i := 0; i < 120; i++ {
		z.Step(2.4, time.Second)
	}
	if !z.Throttling() {
		t.Fatalf("hot zone not throttling (%.1f C)", z.TempC())
	}
	if z.CapFreq() >= table.Max().Freq {
		t.Error("throttling zone should cap below f_max")
	}
	clamped := z.Clamp(table.Max().Freq)
	if clamped >= table.Max().Freq {
		t.Errorf("Clamp(f_max) = %v, want below f_max", clamped)
	}
	// Cool: idle power drops temperature below release.
	for i := 0; i < 600; i++ {
		z.Step(0.1, time.Second)
	}
	if z.Throttling() {
		t.Errorf("cool zone still throttling (%.1f C, cap %v)", z.TempC(), z.CapFreq())
	}
	if got := z.Clamp(table.Max().Freq); got != table.Max().Freq {
		t.Errorf("released zone Clamp(f_max) = %v, want f_max", got)
	}
}

func TestThrottleDisabled(t *testing.T) {
	p := nexus5Params()
	p.TripC = 0
	z := newZone(t, p)
	for i := 0; i < 600; i++ {
		z.Step(3.0, time.Second)
	}
	if z.Throttling() {
		t.Error("disabled throttle engaged")
	}
	if got, want := z.Clamp(2_265_600*soc.KHz), 2_265_600*soc.KHz; got != want {
		t.Errorf("Clamp = %v, want %v", got, want)
	}
}

func TestHysteresisHoldsBetweenReleaseAndTrip(t *testing.T) {
	z := newZone(t, nexus5Params())
	// Drive above trip to engage.
	for i := 0; i < 60; i++ {
		z.Step(2.4, time.Second)
	}
	if !z.Throttling() {
		t.Fatal("not throttling after sustained heat")
	}
	capBefore := z.CapFreq()
	// Hold power such that temperature sits between release (34) and
	// trip (36): P = (35-22)/8.4 ≈ 1.55 W.
	for i := 0; i < 120; i++ {
		z.Step(1.55, time.Second)
	}
	if z.TempC() < 34 || z.TempC() > 36 {
		t.Fatalf("test setup wrong: temp %.1f outside hysteresis band", z.TempC())
	}
	if got := z.CapFreq(); got > capBefore {
		t.Errorf("cap rose inside hysteresis band: %v > %v", got, capBefore)
	}
}

func TestReset(t *testing.T) {
	z := newZone(t, nexus5Params())
	for i := 0; i < 120; i++ {
		z.Step(2.4, time.Second)
	}
	z.Reset()
	if z.TempC() != 22 {
		t.Errorf("reset temp = %.1f, want ambient", z.TempC())
	}
	if z.Throttling() {
		t.Error("reset zone still throttling")
	}
}

// TestTemperatureBoundedProperty: temperature never exceeds the maximum of
// current temperature and the steady state of the applied power, and never
// goes below ambient for non-negative power.
func TestTemperatureBoundedProperty(t *testing.T) {
	p := nexus5Params()
	p.TripC = 0
	prop := func(steps []uint8) bool {
		z, err := NewZone(p, soc.MSM8974Table())
		if err != nil {
			return false
		}
		for _, s := range steps {
			watts := float64(s) / 64.0 // 0..4 W
			before := z.TempC()
			z.Step(watts, 100*time.Millisecond)
			after := z.TempC()
			upper := math.Max(before, z.SteadyStateC(watts))
			if after > upper+1e-9 || after < p.AmbientC-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}
