package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mobicore/internal/sched"
	"mobicore/internal/soc"
)

// BusyLoopConfig shapes the kernel-app reproduction. The real tool runs
// busy loops "for a certain number of iterations and includes a period of
// idleness, which is about 40ms" (§3.1): each thread spins through a fixed
// cycle budget, then sleeps 40 ms, then repeats. The "allowed overall CPU
// utilization" knob sizes the spin budget so that, at the reference
// frequency, the duty cycle equals the target utilization. Because the spin
// budget is in cycles, a slower clock stretches the busy phase — raising
// observed utilization — exactly the feedback real governors see.
type BusyLoopConfig struct {
	// TargetUtil is the per-thread duty-cycle target at RefFreq, in [0,1].
	// 1.0 means continuous spinning with no idle period.
	TargetUtil float64
	// Threads is the number of worker loops (the paper's app splits work
	// over 4 processes, §3.2).
	Threads int
	// RefFreq anchors the utilization target: the spin budget is sized so
	// a core at RefFreq spends TargetUtil of its time busy. Experiments
	// use the frequency they pin, or f_max for governor-driven runs.
	RefFreq soc.Hz
	// IdlePeriod is the sleep between spin batches (default 40 ms, §3.1).
	IdlePeriod time.Duration
	// Stagger offsets each thread's first batch by Stagger×index so the
	// threads do not run in lockstep (default 10 ms).
	Stagger time.Duration
}

// Validate rejects nonsensical configurations.
func (c BusyLoopConfig) Validate() error {
	if c.TargetUtil < 0 || c.TargetUtil > 1 {
		return errors.New("workload: TargetUtil must be in [0,1]")
	}
	if c.Threads < 1 {
		return errors.New("workload: Threads must be >= 1")
	}
	if c.RefFreq == 0 {
		return errors.New("workload: RefFreq must be set")
	}
	if c.IdlePeriod < 0 || c.Stagger < 0 {
		return errors.New("workload: idle/stagger durations must be non-negative")
	}
	return nil
}

// loopPhase is one thread's position in the spin/idle cycle.
type loopPhase int

const (
	phaseSpinning loopPhase = iota + 1
	phaseIdling
)

type loopState struct {
	thread *sched.Thread
	phase  loopPhase
	timer  time.Duration // remaining idle time when idling
}

// BusyLoop is the reproduced in-house kernel application: per-thread
// spin-for-C-cycles / idle-40ms duty cycles with no memory accesses.
type BusyLoop struct {
	cfg        BusyLoopConfig
	continuous bool    // TargetUtil ≈ 1: spin without idle periods
	spinCycles float64 // cycles per spin batch when not continuous
	steady     bool    // last Tick deposited nothing (SteadyHint)
	loops      []loopState
	threads    []*sched.Thread
}

var (
	_ Workload     = (*BusyLoop)(nil)
	_ SteadyHinter = (*BusyLoop)(nil)
)

// continuousUtil is the utilization at or above which the loop degenerates
// to continuous spinning: the thread keeps a standing backlog instead of
// alternating spin batches with idle periods.
const continuousUtil = 0.999

// NewBusyLoop builds the kernel-app workload.
func NewBusyLoop(cfg BusyLoopConfig) (*BusyLoop, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.IdlePeriod == 0 {
		cfg.IdlePeriod = 40 * time.Millisecond // §3.1's idle period
	}
	if cfg.Stagger == 0 {
		cfg.Stagger = 10 * time.Millisecond
	}
	b := &BusyLoop{cfg: cfg, continuous: cfg.TargetUtil >= continuousUtil}
	if !b.continuous {
		// busy/(busy+idle) = u  ⇒  busy = idle·u/(1-u); cycles at RefFreq.
		busySec := cfg.IdlePeriod.Seconds() * cfg.TargetUtil / (1 - cfg.TargetUtil)
		b.spinCycles = busySec * float64(cfg.RefFreq)
	}
	b.loops = make([]loopState, cfg.Threads)
	b.threads = make([]*sched.Thread, cfg.Threads)
	for i := range b.loops {
		th := sched.NewThread(fmt.Sprintf("busyloop-%d", i))
		b.threads[i] = th
		// Start idling for the stagger offset, then begin spinning.
		b.loops[i] = loopState{
			thread: th,
			phase:  phaseIdling,
			timer:  time.Duration(i) * cfg.Stagger,
		}
	}
	return b, nil
}

// Name implements Workload.
func (b *BusyLoop) Name() string { return "busyloop" }

// Threads implements Workload.
func (b *BusyLoop) Threads() []*sched.Thread { return b.threads }

// Done implements Workload: the kernel app runs until stopped.
func (b *BusyLoop) Done() bool { return false }

// SpinCycles reports the per-batch cycle budget (0 when continuous).
func (b *BusyLoop) SpinCycles() float64 { return b.spinCycles }

// Continuous reports whether the loop spins without idle periods.
func (b *BusyLoop) Continuous() bool { return b.continuous }

// SteadyHint implements SteadyHinter: true when the last Tick deposited no
// work — mid-batch spinning and idle-timer countdowns leave demand exactly
// as the scheduler left it, which is most ticks of a duty-cycled loop.
func (b *BusyLoop) SteadyHint() bool { return b.steady }

// Tick implements Workload: advance each thread's spin/idle state machine.
func (b *BusyLoop) Tick(now, dt time.Duration, rng *rand.Rand) {
	_ = rng // the kernel app is deterministic
	b.steady = true
	for i := range b.loops {
		l := &b.loops[i]
		if b.continuous {
			// Continuous spin: keep one second of work queued.
			top := float64(b.cfg.RefFreq)
			if l.thread.Pending() < top/2 {
				l.thread.AddWork(top - l.thread.Pending())
				b.steady = false
			}
			continue
		}
		switch l.phase {
		case phaseSpinning:
			if !l.thread.Runnable() {
				// Batch finished somewhere in the last tick; start
				// the idle period.
				l.phase = phaseIdling
				l.timer = b.cfg.IdlePeriod
			}
		case phaseIdling:
			l.timer -= dt
			if l.timer <= 0 {
				if b.cfg.TargetUtil > 0 {
					l.thread.AddWork(b.spinCycles)
					l.phase = phaseSpinning
					b.steady = false
				} else {
					l.timer = b.cfg.IdlePeriod // 0% target: idle forever
				}
			}
		}
	}
}
