package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"mobicore/internal/sched"
)

// Step is one segment of a scripted demand trace.
type Step struct {
	// Duration is how long this segment lasts.
	Duration time.Duration
	// CyclesPerSec is the total demand rate across all threads during
	// the segment.
	CyclesPerSec float64
}

// Scripted replays a piecewise-constant demand trace — the workload shape
// tests use to exercise burst and slow modes deterministically.
type Scripted struct {
	name    string
	steps   []Step
	threads []*sched.Thread
	elapsed time.Duration
	total   time.Duration
}

var _ Workload = (*Scripted)(nil)

// NewScripted builds a scripted workload over nThreads threads.
func NewScripted(name string, nThreads int, steps []Step) (*Scripted, error) {
	if name == "" {
		return nil, errors.New("workload: scripted workload needs a name")
	}
	if nThreads < 1 {
		return nil, errors.New("workload: scripted workload needs >= 1 thread")
	}
	if len(steps) == 0 {
		return nil, errors.New("workload: scripted workload needs steps")
	}
	var total time.Duration
	for i, s := range steps {
		if s.Duration <= 0 {
			return nil, fmt.Errorf("workload: step %d has non-positive duration", i)
		}
		if s.CyclesPerSec < 0 {
			return nil, fmt.Errorf("workload: step %d has negative demand", i)
		}
		total += s.Duration
	}
	threads := make([]*sched.Thread, nThreads)
	for i := range threads {
		threads[i] = sched.NewThread(fmt.Sprintf("%s-%d", name, i))
	}
	return &Scripted{name: name, steps: steps, threads: threads, total: total}, nil
}

// Name implements Workload.
func (s *Scripted) Name() string { return s.name }

// Threads implements Workload.
func (s *Scripted) Threads() []*sched.Thread { return s.threads }

// Done implements Workload: true once the trace is exhausted and every
// deposited cycle has executed.
func (s *Scripted) Done() bool {
	if s.elapsed < s.total {
		return false
	}
	for _, t := range s.threads {
		if t.Runnable() {
			return false
		}
	}
	return true
}

// Tick implements Workload.
func (s *Scripted) Tick(now, dt time.Duration, rng *rand.Rand) {
	_ = rng
	if s.elapsed >= s.total {
		return
	}
	rate := s.rateAt(s.elapsed)
	s.elapsed += dt
	perThread := rate * dt.Seconds() / float64(len(s.threads))
	for _, t := range s.threads {
		t.AddWork(perThread)
	}
}

func (s *Scripted) rateAt(at time.Duration) float64 {
	var acc time.Duration
	for _, step := range s.steps {
		acc += step.Duration
		if at < acc {
			return step.CyclesPerSec
		}
	}
	return 0
}

// Sinusoid produces smoothly varying demand — a stand-in for "dynamic"
// applications whose load oscillates, used in tests of the bandwidth
// controller's burst/slow detection.
type Sinusoid struct {
	name     string
	meanRate float64 // cycles/sec
	amp      float64 // fraction of meanRate
	period   time.Duration
	noise    float64 // stddev as fraction of instantaneous rate
	threads  []*sched.Thread
	elapsed  time.Duration
}

var _ Workload = (*Sinusoid)(nil)

// NewSinusoid builds an oscillating workload.
func NewSinusoid(name string, nThreads int, meanRate, amplitude float64, period time.Duration, noise float64) (*Sinusoid, error) {
	if nThreads < 1 {
		return nil, errors.New("workload: sinusoid needs >= 1 thread")
	}
	if meanRate <= 0 {
		return nil, errors.New("workload: sinusoid needs positive mean rate")
	}
	if amplitude < 0 || amplitude > 1 {
		return nil, errors.New("workload: sinusoid amplitude must be in [0,1]")
	}
	if period <= 0 {
		return nil, errors.New("workload: sinusoid needs positive period")
	}
	if noise < 0 {
		return nil, errors.New("workload: sinusoid noise must be non-negative")
	}
	threads := make([]*sched.Thread, nThreads)
	for i := range threads {
		threads[i] = sched.NewThread(fmt.Sprintf("%s-%d", name, i))
	}
	return &Sinusoid{
		name: name, meanRate: meanRate, amp: amplitude,
		period: period, noise: noise, threads: threads,
	}, nil
}

// Name implements Workload.
func (s *Sinusoid) Name() string { return s.name }

// Threads implements Workload.
func (s *Sinusoid) Threads() []*sched.Thread { return s.threads }

// Done implements Workload: open-ended.
func (s *Sinusoid) Done() bool { return false }

// Tick implements Workload.
func (s *Sinusoid) Tick(now, dt time.Duration, rng *rand.Rand) {
	s.elapsed += dt
	phase := 2 * math.Pi * float64(s.elapsed) / float64(s.period)
	rate := s.meanRate * (1 + s.amp*math.Sin(phase))
	if s.noise > 0 {
		rate *= 1 + s.noise*rng.NormFloat64()
		if rate < 0 {
			rate = 0
		}
	}
	perThread := rate * dt.Seconds() / float64(len(s.threads))
	for _, t := range s.threads {
		t.AddWork(perThread)
	}
}
