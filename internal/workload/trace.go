package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ParseTraceCSV reads a demand trace of "seconds,cycles_per_sec" rows (an
// optional header is skipped) into Scripted steps. Each row's rate holds
// until the next row's timestamp; the final row needs a following
// "end-of-trace" row carrying the closing timestamp (its rate is ignored).
// This is the import half of a measure-on-device / replay-in-simulation
// workflow: record per-second served cycles from a real phone, replay them
// against any policy here.
func ParseTraceCSV(r io.Reader) ([]Step, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace csv: %w", err)
	}
	if len(rows) > 0 {
		if _, err := strconv.ParseFloat(rows[0][0], 64); err != nil {
			rows = rows[1:] // header row
		}
	}
	if len(rows) < 2 {
		return nil, errors.New("workload: trace needs at least two rows (start and end)")
	}
	steps := make([]Step, 0, len(rows)-1)
	prevAt := -1.0
	prevRate := 0.0
	for i, row := range rows {
		at, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad timestamp %q", i, row[0])
		}
		rate, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad rate %q", i, row[1])
		}
		if rate < 0 {
			return nil, fmt.Errorf("workload: trace row %d: negative rate", i)
		}
		if prevAt >= 0 {
			if at <= prevAt {
				return nil, fmt.Errorf("workload: trace row %d: timestamps not increasing", i)
			}
			steps = append(steps, Step{
				Duration:     time.Duration((at - prevAt) * float64(time.Second)),
				CyclesPerSec: prevRate,
			})
		}
		prevAt, prevRate = at, rate
	}
	return steps, nil
}

// WriteTraceCSV writes steps in the format ParseTraceCSV reads, including
// the closing end-of-trace row.
func WriteTraceCSV(w io.Writer, steps []Step) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "cycles_per_sec"}); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	at := 0.0
	for _, s := range steps {
		row := []string{
			strconv.FormatFloat(at, 'f', 6, 64),
			strconv.FormatFloat(s.CyclesPerSec, 'f', 3, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: writing trace row: %w", err)
		}
		at += s.Duration.Seconds()
	}
	end := []string{strconv.FormatFloat(at, 'f', 6, 64), "0"}
	if err := cw.Write(end); err != nil {
		return fmt.Errorf("workload: writing trace end row: %w", err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("workload: flushing trace: %w", err)
	}
	return nil
}
