package workload

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// ParseTraceCSV reads a demand trace of "seconds,cycles_per_sec" rows (an
// optional header is skipped) into Scripted steps. Each row's rate holds
// until the next row's timestamp; the final row needs a following
// "end-of-trace" row carrying the closing timestamp (its rate is ignored).
// This is the import half of a measure-on-device / replay-in-simulation
// workflow: record per-second served cycles from a real phone, replay them
// against any policy here.
//
// The first row counts as a header only when at least one of its fields is
// non-numeric; a numeric-looking first row is data. Timestamps must be
// finite, non-negative, and strictly increasing — a violation is rejected
// with the 1-based physical row number (header included), never silently
// reordered or dropped.
func ParseTraceCSV(r io.Reader) ([]Step, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 2
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace csv: %w", err)
	}
	// rowNum tracks physical 1-based file rows so error positions survive
	// the header skip.
	rowNum := 0
	if len(rows) > 0 {
		_, errAt := strconv.ParseFloat(rows[0][0], 64)
		_, errRate := strconv.ParseFloat(rows[0][1], 64)
		if errAt != nil || errRate != nil {
			rows = rows[1:] // header row
			rowNum = 1
		}
	}
	if len(rows) < 2 {
		return nil, errors.New("workload: trace needs at least two rows (start and end)")
	}
	steps := make([]Step, 0, len(rows)-1)
	prevAt := 0.0
	prevRate := 0.0
	havePrev := false
	for _, row := range rows {
		rowNum++
		at, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad timestamp %q", rowNum, row[0])
		}
		rate, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace row %d: bad rate %q", rowNum, row[1])
		}
		if math.IsNaN(at) || at < 0 || at > maxTraceSeconds {
			return nil, fmt.Errorf("workload: trace row %d: timestamp %v outside [0,%g]", rowNum, at, float64(maxTraceSeconds))
		}
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			return nil, fmt.Errorf("workload: trace row %d: rate %v outside [0,inf)", rowNum, rate)
		}
		if havePrev {
			d := time.Duration((at - prevAt) * float64(time.Second))
			if at <= prevAt || d <= 0 {
				return nil, fmt.Errorf("workload: trace row %d: timestamp %v not after %v (at ns resolution)", rowNum, at, prevAt)
			}
			steps = append(steps, Step{Duration: d, CyclesPerSec: prevRate})
		}
		prevAt, prevRate, havePrev = at, rate, true
	}
	return steps, nil
}

// maxTraceSeconds bounds trace timestamps (~31 simulated years): large
// enough for any recorded session, small enough that the seconds→Duration
// conversion can never overflow int64 nanoseconds.
const maxTraceSeconds = 1e9

// WriteTraceCSV writes steps in the format ParseTraceCSV reads, including
// the closing end-of-trace row.
func WriteTraceCSV(w io.Writer, steps []Step) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "cycles_per_sec"}); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	at := 0.0
	for _, s := range steps {
		row := []string{
			strconv.FormatFloat(at, 'f', 6, 64),
			strconv.FormatFloat(s.CyclesPerSec, 'f', 3, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: writing trace row: %w", err)
		}
		at += s.Duration.Seconds()
	}
	end := []string{strconv.FormatFloat(at, 'f', 6, 64), "0"}
	if err := cw.Write(end); err != nil {
		return fmt.Errorf("workload: writing trace end row: %w", err)
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("workload: flushing trace: %w", err)
	}
	return nil
}
