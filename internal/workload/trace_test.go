package workload

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestParseTraceCSV(t *testing.T) {
	in := "seconds,cycles_per_sec\n0,1e9\n0.5,2e9\n1.0,0\n"
	steps, err := ParseTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{
		{Duration: 500 * time.Millisecond, CyclesPerSec: 1e9},
		{Duration: 500 * time.Millisecond, CyclesPerSec: 2e9},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %d, want %d", len(steps), len(want))
	}
	for i := range want {
		if steps[i].Duration != want[i].Duration || steps[i].CyclesPerSec != want[i].CyclesPerSec {
			t.Errorf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}
}

func TestParseTraceCSVNoHeader(t *testing.T) {
	steps, err := ParseTraceCSV(strings.NewReader("0,5e8\n2,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Duration != 2*time.Second || steps[0].CyclesPerSec != 5e8 {
		t.Errorf("steps = %+v", steps)
	}
}

func TestParseTraceCSVErrors(t *testing.T) {
	// wantErr is a substring of the expected error; row-numbered cases pin
	// the 1-based physical file row, counting the header when present.
	cases := map[string]struct {
		in      string
		wantErr string
	}{
		"too short":           {"0,1e9\n", "at least two rows"},
		"bad timestamp":       {"zero,1e9\nx,0\n", "at least two rows"}, // first row reads as header
		"bad timestamp row":   {"0,1e9\nx,0\n2,0\n", "row 2: bad timestamp"},
		"bad rate":            {"0,fast\n1,0\n", "at least two rows"}, // ditto: header
		"bad rate row":        {"t,r\n0,1e9\n1,fast\n2,0\n", "row 3: bad rate"},
		"negative rate":       {"0,-5\n1,0\n", "row 1: rate"},
		"nan rate":            {"0,NaN\n1,0\n", "row 1: rate"},
		"non-increasing":      {"0,1e9\n0,2e9\n1,0\n", "row 2: timestamp"},
		"decreasing w/header": {"seconds,cycles_per_sec\n0,1e9\n2,2e9\n1,0\n", "row 4: timestamp"},
		"negative timestamps": {"-3,1e9\n-2,2e9\n-1,0\n", "row 1: timestamp"},
		"sub-ns spacing":      {"0,1e9\n1e-12,0\n", "row 2: timestamp"},
		"timestamp overflow":  {"0,1e9\n1e300,0\n", "row 2: timestamp"},
		"wrong fields":        {"0,1,2\n", "wrong number of fields"},
	}
	for name, c := range cases {
		_, err := ParseTraceCSV(strings.NewReader(c.in))
		if err == nil {
			t.Errorf("%s: accepted %q", name, c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, c.wantErr)
		}
	}
}

// TestParseTraceCSVNumericHeader: a first row that parses as numbers is
// data, not a header — so a non-monotonic sequence hiding behind it must be
// rejected, never silently accepted (the old header heuristic let negative
// timestamps bypass the monotonicity check entirely).
func TestParseTraceCSVNumericHeader(t *testing.T) {
	steps, err := ParseTraceCSV(strings.NewReader("0,0\n1,1e9\n2,0\n"))
	if err != nil {
		t.Fatalf("numeric first row rejected: %v", err)
	}
	if len(steps) != 2 || steps[0].CyclesPerSec != 0 || steps[1].CyclesPerSec != 1e9 {
		t.Errorf("steps = %+v, want the numeric first row kept as data", steps)
	}
	if _, err := ParseTraceCSV(strings.NewReader("5,0\n1,1e9\n2,0\n")); err == nil {
		t.Error("non-monotonic rows behind a numeric-looking header were silently accepted")
	}
}

// TestTraceExportParseExportByteIdentical is the round-trip property at
// byte strength: exporting randomized (seeded) millisecond-grained steps,
// parsing them back, and exporting again reproduces the first file exactly.
func TestTraceExportParseExportByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7ace))
	for trial := 0; trial < 50; trial++ {
		steps := make([]Step, 1+rng.Intn(40))
		for i := range steps {
			steps[i] = Step{
				Duration: time.Duration(1+rng.Intn(5000)) * time.Millisecond,
				// kHz-grained rates render exactly at the format's
				// three decimals.
				CyclesPerSec: float64(rng.Intn(4_000_000)) * 1e3,
			}
		}
		var first bytes.Buffer
		if err := WriteTraceCSV(&first, steps); err != nil {
			t.Fatal(err)
		}
		parsed, err := ParseTraceCSV(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: parsing exported trace: %v", trial, err)
		}
		var second bytes.Buffer
		if err := WriteTraceCSV(&second, parsed); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("trial %d: export→parse→export not byte-identical:\n--- first ---\n%s\n--- second ---\n%s",
				trial, first.Bytes(), second.Bytes())
		}
	}
}

// FuzzParseTraceCSV: whatever bytes arrive, the parser either rejects them
// or returns a well-formed trace that survives an export/re-parse cycle.
// Run with `go test -fuzz=FuzzParseTraceCSV ./internal/workload/`.
func FuzzParseTraceCSV(f *testing.F) {
	f.Add("seconds,cycles_per_sec\n0,1e9\n0.5,2e9\n1.0,0\n")
	f.Add("0,5e8\n2,0\n")
	f.Add("-3,1e9\n-2,2e9\n-1,0\n")
	f.Add("0,1e9\n0,2e9\n1,0\n")
	f.Add("0,1e9\n1e-12,0\n")
	f.Add("0,NaN\n1,0\n")
	f.Fuzz(func(t *testing.T, in string) {
		steps, err := ParseTraceCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		minDur := time.Duration(math.MaxInt64)
		for i, s := range steps {
			if s.Duration <= 0 {
				t.Fatalf("step %d: accepted non-positive duration %v from %q", i, s.Duration, in)
			}
			if s.CyclesPerSec < 0 || math.IsNaN(s.CyclesPerSec) || math.IsInf(s.CyclesPerSec, 0) {
				t.Fatalf("step %d: accepted bad rate %v from %q", i, s.CyclesPerSec, in)
			}
			if s.Duration < minDur {
				minDur = s.Duration
			}
		}
		var buf bytes.Buffer
		if err := WriteTraceCSV(&buf, steps); err != nil {
			t.Fatalf("exporting accepted trace: %v", err)
		}
		// The CSV format carries microsecond timestamps; only traces
		// above that resolution are guaranteed to re-import.
		if minDur >= time.Microsecond {
			if _, err := ParseTraceCSV(&buf); err != nil {
				t.Fatalf("re-parsing exported trace: %v (input %q)", err, in)
			}
		}
	})
}

// TestTraceRoundTrip: Write → Parse reproduces the steps.
func TestTraceRoundTrip(t *testing.T) {
	orig := []Step{
		{Duration: 250 * time.Millisecond, CyclesPerSec: 1.5e9},
		{Duration: time.Second, CyclesPerSec: 3e8},
		{Duration: 100 * time.Millisecond, CyclesPerSec: 0},
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip steps = %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		durDelta := got[i].Duration - orig[i].Duration
		if durDelta < -time.Microsecond || durDelta > time.Microsecond {
			t.Errorf("step %d duration = %v, want %v", i, got[i].Duration, orig[i].Duration)
		}
		if got[i].CyclesPerSec != orig[i].CyclesPerSec {
			t.Errorf("step %d rate = %v, want %v", i, got[i].CyclesPerSec, orig[i].CyclesPerSec)
		}
	}
}

// TestTracePlayback: a parsed trace drives a Scripted workload.
func TestTracePlayback(t *testing.T) {
	steps, err := ParseTraceCSV(strings.NewReader("0,1e9\n0.1,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	wl, err := NewScripted("replayed", 1, steps)
	if err != nil {
		t.Fatal(err)
	}
	for now := time.Duration(0); now < 200*time.Millisecond; now += time.Millisecond {
		wl.Tick(now, time.Millisecond, rng())
	}
	got := PendingCycles(wl)
	if got < 0.95e8 || got > 1.05e8 {
		t.Errorf("replayed demand = %v, want ≈1e8", got)
	}
}
