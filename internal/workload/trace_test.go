package workload

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseTraceCSV(t *testing.T) {
	in := "seconds,cycles_per_sec\n0,1e9\n0.5,2e9\n1.0,0\n"
	steps, err := ParseTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Step{
		{Duration: 500 * time.Millisecond, CyclesPerSec: 1e9},
		{Duration: 500 * time.Millisecond, CyclesPerSec: 2e9},
	}
	if len(steps) != len(want) {
		t.Fatalf("steps = %d, want %d", len(steps), len(want))
	}
	for i := range want {
		if steps[i].Duration != want[i].Duration || steps[i].CyclesPerSec != want[i].CyclesPerSec {
			t.Errorf("step %d = %+v, want %+v", i, steps[i], want[i])
		}
	}
}

func TestParseTraceCSVNoHeader(t *testing.T) {
	steps, err := ParseTraceCSV(strings.NewReader("0,5e8\n2,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Duration != 2*time.Second || steps[0].CyclesPerSec != 5e8 {
		t.Errorf("steps = %+v", steps)
	}
}

func TestParseTraceCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too short":      "0,1e9\n",
		"bad timestamp":  "zero,1e9\nx,0\n",
		"bad rate":       "0,fast\n1,0\n",
		"negative rate":  "0,-5\n1,0\n",
		"non-increasing": "0,1e9\n0,2e9\n1,0\n",
		"wrong fields":   "0,1,2\n",
	}
	for name, in := range cases {
		if _, err := ParseTraceCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

// TestTraceRoundTrip: Write → Parse reproduces the steps.
func TestTraceRoundTrip(t *testing.T) {
	orig := []Step{
		{Duration: 250 * time.Millisecond, CyclesPerSec: 1.5e9},
		{Duration: time.Second, CyclesPerSec: 3e8},
		{Duration: 100 * time.Millisecond, CyclesPerSec: 0},
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip steps = %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		durDelta := got[i].Duration - orig[i].Duration
		if durDelta < -time.Microsecond || durDelta > time.Microsecond {
			t.Errorf("step %d duration = %v, want %v", i, got[i].Duration, orig[i].Duration)
		}
		if got[i].CyclesPerSec != orig[i].CyclesPerSec {
			t.Errorf("step %d rate = %v, want %v", i, got[i].CyclesPerSec, orig[i].CyclesPerSec)
		}
	}
}

// TestTracePlayback: a parsed trace drives a Scripted workload.
func TestTracePlayback(t *testing.T) {
	steps, err := ParseTraceCSV(strings.NewReader("0,1e9\n0.1,0\n"))
	if err != nil {
		t.Fatal(err)
	}
	wl, err := NewScripted("replayed", 1, steps)
	if err != nil {
		t.Fatal(err)
	}
	for now := time.Duration(0); now < 200*time.Millisecond; now += time.Millisecond {
		wl.Tick(now, time.Millisecond, rng())
	}
	got := PendingCycles(wl)
	if got < 0.95e8 || got > 1.05e8 {
		t.Errorf("replayed demand = %v, want ≈1e8", got)
	}
}
