// Package workload defines the demand side of the simulation: generators
// that deposit cycle debt into scheduler threads each tick. It includes the
// reproduction of the thesis' "in-house kernel application" — configurable
// busy loops with no memory accesses and a ~40 ms idle period per iteration
// (§3.1) — plus scripted shapes used by tests and experiments.
package workload

import (
	"math/rand"
	"time"

	"mobicore/internal/sched"
)

// Workload produces demand over simulated time. Implementations are driven
// by the simulation loop and must be deterministic given the same rng.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// Tick advances the workload by dt at simulation time now, depositing
	// any new demand into its threads. rng is the simulation's seeded
	// source; implementations must use it for all randomness.
	Tick(now, dt time.Duration, rng *rand.Rand)
	// Threads returns the workload's schedulable threads. The slice is
	// append-only: existing entries are stable for the whole run, and
	// implementations that spawn threads mid-run (phase fan-out) may
	// grow it between Ticks — the engine re-reads it every tick.
	Threads() []*sched.Thread
	// Done reports whether a finite workload has produced all its work
	// and seen it executed. Open-ended workloads always return false.
	Done() bool
}

// SteadyHinter is an optional Workload refinement for the engine's
// quiescent-tick fast path. After each Tick the workload reports whether
// that Tick left demand untouched: no thread gained or shed pending cycles
// and the thread set did not change (scheduler execution draining threads
// does not count — only the workload's own deposits). When every workload in
// a session hints steady, the engine skips the per-thread runnable-set
// compare; workloads whose demand depends on randomness or frame pacing
// simply do not implement the interface and fall back to the full compare.
// A workload must only return true when the contract genuinely holds — the
// engine trusts the hint.
type SteadyHinter interface {
	// SteadyHint reports whether the most recent Tick changed no demand.
	SteadyHint() bool
}

// ExecutedCycles sums executed cycles across a workload's threads.
func ExecutedCycles(w Workload) float64 {
	var total float64
	for _, t := range w.Threads() {
		total += t.Executed()
	}
	return total
}

// PendingCycles sums queued cycles across a workload's threads.
func PendingCycles(w Workload) float64 {
	var total float64
	for _, t := range w.Threads() {
		total += t.Pending()
	}
	return total
}
