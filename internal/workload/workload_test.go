package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mobicore/internal/soc"
)

const fmax = 2_265_600 * soc.KHz

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestBusyLoopConfigValidate(t *testing.T) {
	good := BusyLoopConfig{TargetUtil: 0.5, Threads: 4, RefFreq: fmax}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []BusyLoopConfig{
		{TargetUtil: -0.1, Threads: 1, RefFreq: fmax},
		{TargetUtil: 1.1, Threads: 1, RefFreq: fmax},
		{TargetUtil: 0.5, Threads: 0, RefFreq: fmax},
		{TargetUtil: 0.5, Threads: 1, RefFreq: 0},
		{TargetUtil: 0.5, Threads: 1, RefFreq: fmax, IdlePeriod: -time.Second},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

// TestBusyLoopDutyCycle: the spin budget must equal the §3.1 duty-cycle
// arithmetic — busy = idle·u/(1−u) at the reference frequency.
func TestBusyLoopDutyCycle(t *testing.T) {
	b, err := NewBusyLoop(BusyLoopConfig{TargetUtil: 0.3, Threads: 1, RefFreq: fmax})
	if err != nil {
		t.Fatal(err)
	}
	wantBusySec := 0.040 * 0.3 / 0.7
	if got, want := b.SpinCycles(), wantBusySec*float64(fmax); math.Abs(got-want) > 1 {
		t.Errorf("spin cycles = %v, want %v", got, want)
	}
}

// TestBusyLoopAlternation: a thread deposits one batch, goes idle for the
// idle period after the batch is drained, then deposits again.
func TestBusyLoopAlternation(t *testing.T) {
	b, err := NewBusyLoop(BusyLoopConfig{
		TargetUtil: 0.5, Threads: 1, RefFreq: fmax, Stagger: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	th := b.Threads()[0]
	r := rng()
	// Tick until the first batch lands.
	now := time.Duration(0)
	for i := 0; i < 10 && !th.Runnable(); i++ {
		b.Tick(now, time.Millisecond, r)
		now += time.Millisecond
	}
	if !th.Runnable() {
		t.Fatal("no batch deposited after stagger")
	}
	batch := th.Pending()
	if math.Abs(batch-b.SpinCycles()) > 1 {
		t.Fatalf("batch = %v, want %v", batch, b.SpinCycles())
	}
	// Drain it; the loop must wait IdlePeriod before the next batch.
	th.DropWork(batch)
	b.Tick(now, time.Millisecond, r)
	now += time.Millisecond
	if th.Runnable() {
		t.Fatal("deposited immediately without idling")
	}
	for i := 0; i < 39; i++ { // rest of the 40 ms idle period
		b.Tick(now, time.Millisecond, r)
		now += time.Millisecond
	}
	b.Tick(now, time.Millisecond, r)
	if !th.Runnable() {
		t.Error("no batch after the idle period elapsed")
	}
}

func TestBusyLoopContinuousSpin(t *testing.T) {
	b, err := NewBusyLoop(BusyLoopConfig{TargetUtil: 1.0, Threads: 2, RefFreq: fmax})
	if err != nil {
		t.Fatal(err)
	}
	if b.SpinCycles() != 0 {
		t.Errorf("continuous spin should report 0 batch cycles, got %v", b.SpinCycles())
	}
	r := rng()
	b.Tick(0, time.Millisecond, r)
	for i, th := range b.Threads() {
		if !th.Runnable() {
			t.Errorf("thread %d idle under continuous spin", i)
		}
	}
	if b.Done() {
		t.Error("busy loop should never report done")
	}
}

func TestBusyLoopZeroUtil(t *testing.T) {
	b, err := NewBusyLoop(BusyLoopConfig{TargetUtil: 0, Threads: 1, RefFreq: fmax})
	if err != nil {
		t.Fatal(err)
	}
	r := rng()
	for now := time.Duration(0); now < time.Second; now += time.Millisecond {
		b.Tick(now, time.Millisecond, r)
	}
	if got := b.Threads()[0].Pending(); got != 0 {
		t.Errorf("0%% target deposited %v cycles", got)
	}
}

func TestScriptedValidation(t *testing.T) {
	if _, err := NewScripted("", 1, []Step{{Duration: time.Second, CyclesPerSec: 1}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewScripted("x", 0, []Step{{Duration: time.Second, CyclesPerSec: 1}}); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewScripted("x", 1, nil); err == nil {
		t.Error("no steps accepted")
	}
	if _, err := NewScripted("x", 1, []Step{{Duration: 0, CyclesPerSec: 1}}); err == nil {
		t.Error("zero-duration step accepted")
	}
	if _, err := NewScripted("x", 1, []Step{{Duration: time.Second, CyclesPerSec: -1}}); err == nil {
		t.Error("negative demand accepted")
	}
}

func TestScriptedReplaysTrace(t *testing.T) {
	s, err := NewScripted("trace", 2, []Step{
		{Duration: 100 * time.Millisecond, CyclesPerSec: 1e9},
		{Duration: 100 * time.Millisecond, CyclesPerSec: 2e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng()
	for now := time.Duration(0); now < 300*time.Millisecond; now += time.Millisecond {
		s.Tick(now, time.Millisecond, r)
	}
	deposited := PendingCycles(s)
	want := 1e9*0.1 + 2e9*0.1
	if math.Abs(deposited-want) > 1e6 {
		t.Errorf("deposited = %v, want %v", deposited, want)
	}
	if s.Done() {
		t.Error("Done with pending work")
	}
	for _, th := range s.Threads() {
		th.DropWork(th.Pending())
	}
	if !s.Done() {
		t.Error("not Done after trace exhausted and work drained")
	}
}

func TestSinusoidValidation(t *testing.T) {
	if _, err := NewSinusoid("s", 0, 1e9, 0.5, time.Second, 0); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := NewSinusoid("s", 1, 0, 0.5, time.Second, 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewSinusoid("s", 1, 1e9, 1.5, time.Second, 0); err == nil {
		t.Error("amplitude > 1 accepted")
	}
	if _, err := NewSinusoid("s", 1, 1e9, 0.5, 0, 0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewSinusoid("s", 1, 1e9, 0.5, time.Second, -1); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestSinusoidMeanRate(t *testing.T) {
	s, err := NewSinusoid("wave", 1, 1e9, 0.5, 100*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng()
	// Integrate over exactly ten periods: the sinusoid averages out.
	for now := time.Duration(0); now < time.Second; now += time.Millisecond {
		s.Tick(now, time.Millisecond, r)
	}
	got := PendingCycles(s)
	if math.Abs(got-1e9)/1e9 > 0.02 {
		t.Errorf("integrated demand = %v, want ≈1e9 (mean rate over full periods)", got)
	}
}

func TestSinusoidDeterminism(t *testing.T) {
	run := func() float64 {
		s, err := NewSinusoid("wave", 2, 1e9, 0.5, 50*time.Millisecond, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(33))
		for now := time.Duration(0); now < 200*time.Millisecond; now += time.Millisecond {
			s.Tick(now, time.Millisecond, r)
		}
		return PendingCycles(s)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

func TestExecutedCyclesHelper(t *testing.T) {
	b, err := NewBusyLoop(BusyLoopConfig{TargetUtil: 0.5, Threads: 2, RefFreq: fmax})
	if err != nil {
		t.Fatal(err)
	}
	if got := ExecutedCycles(b); got != 0 {
		t.Errorf("fresh workload executed = %v", got)
	}
}
