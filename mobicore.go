// Package mobicore is a library reproduction of "MobiCore: An Adaptive
// Hybrid Approach for Power-Efficient CPU Management on Android Devices"
// (Broyde, University of Pittsburgh, 2017).
//
// It provides a deterministic smartphone-SoC simulation — multi-core CPU
// with per-core DVFS and hotplug, a calibrated CMOS power model, an RC
// thermal model with throttling, a load-balancing scheduler with CFS-style
// bandwidth control, and the stock Linux cpufreq governors — plus the
// paper's contribution: the MobiCore unified CPU manager, which decides
// frequency, online core count, and CPU bandwidth quota in one step.
//
// Beyond the thesis' homogeneous handsets, the simulator models
// heterogeneous (big.LITTLE) SoCs: a platform may declare multiple
// clusters, each its own frequency domain with a private OPP table and
// power calibration. The "nexus6p" profile is a Snapdragon 810-class
// 4×A53 + 4×A57 device; on such platforms MobiCore runs per cluster with
// an energy-aware gate that parks the big cores until the LITTLE cluster
// runs out of headroom, and stock governors run one instance per cluster,
// as Linux does. See README.md for the cluster model.
//
// Quick start:
//
//	dev, err := mobicore.NewDevice(mobicore.Config{
//		Platform: "nexus5",
//		Policy:   mobicore.PolicyMobiCore,
//	}, mobicore.BusyLoop(0.3, 4))
//	if err != nil { ... }
//	report, err := dev.Run(10 * time.Second)
//	fmt.Printf("%.1f mW\n", report.AvgPowerW*1000)
//
// Every table and figure of the thesis' evaluation can be regenerated with
// RunExperiment; see ExperimentIDs for the list.
package mobicore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"mobicore/internal/cpufreq"
	"mobicore/internal/experiment"
	"mobicore/internal/platform"
	"mobicore/internal/policy"
	"mobicore/internal/sim"
	"mobicore/internal/soc"
	"mobicore/internal/stack"
	"mobicore/internal/workload"
)

// Policy names accepted by Config.Policy.
const (
	// PolicyMobiCore is the paper's contribution: the full energy-model
	// guided hybrid manager (DVFS + DCS + bandwidth in one decision).
	PolicyMobiCore = stack.MobiCore
	// PolicyMobiCoreThreshold is MobiCore with the §5.2 threshold rule
	// for core re-evaluation instead of the energy-model search.
	PolicyMobiCoreThreshold = stack.MobiCoreThreshold
	// PolicyAndroidDefault is the baseline the thesis evaluates against:
	// the ondemand governor plus the default load hotplug (mpdecision
	// disabled).
	PolicyAndroidDefault = stack.AndroidDefault
	// PolicyOracle is the §4.2 exhaustive energy-model optimizer,
	// re-evaluated every sampling period.
	PolicyOracle = stack.Oracle
)

// Config assembles a simulated device.
type Config struct {
	// Platform names a device profile: "nexus5" (default), "nexus-s",
	// "mb810", "galaxy-s2", "nexus4", "lg-g3", "nexus6p", or "sd855".
	// See Platforms.
	Platform string
	// Policy names the CPU manager: one of the Policy* constants or
	// "<governor>+<hotplug>" where governor is any stock cpufreq
	// governor (ondemand, interactive, conservative, powersave,
	// performance, userspace) and hotplug is "load", "mpdecision", or
	// "fixed-N". Defaults to PolicyAndroidDefault.
	Policy string
	// SamplePeriod is the governor sampling period (default 50 ms).
	SamplePeriod time.Duration
	// Tick is the simulation integration step (default 1 ms).
	Tick time.Duration
	// Seed drives all workload randomness; equal seeds reproduce runs
	// bit for bit.
	Seed int64
	// Sched selects the scheduler's placement rule: SchedGreedy
	// (default) or SchedEAS for energy-aware placement driven by the
	// platform's energy model. On homogeneous platforms both produce
	// identical placements.
	Sched string
	// DisableThermalThrottle removes the thermal frequency cap (the
	// configuration of the paper's short "highest computing state"
	// measurements).
	DisableThermalThrottle bool
}

// Scheduler placement rules accepted by Config.Sched.
const (
	// SchedGreedy is the original LITTLE-first most-budget greedy placer.
	SchedGreedy = sim.PlacerGreedy
	// SchedEAS is find_energy_efficient_cpu-style energy-aware placement:
	// each thread goes to the cluster predicted to execute its cycles at
	// the least energy, at the OPP the governor would pick.
	SchedEAS = sim.PlacerEAS
)

// Scheds lists the accepted placement-rule names.
func Scheds() []string { return []string{SchedGreedy, SchedEAS} }

// Device is a simulated handset running workloads under a CPU policy.
type Device struct {
	sim  *sim.Sim
	plat platform.Platform
}

// Workload is the demand-side interface; build instances with BusyLoop,
// NewGame, GeekBenchRun, Scripted, or Sinusoid.
type Workload = workload.Workload

// Report summarizes a completed run; see the fields of sim.Report.
type Report = sim.Report

// NewDevice builds a device from cfg and installs the workloads.
func NewDevice(cfg Config, workloads ...Workload) (*Device, error) {
	if len(workloads) == 0 {
		return nil, errors.New("mobicore: NewDevice needs at least one workload")
	}
	plat, err := lookupPlatform(cfg.Platform)
	if err != nil {
		return nil, err
	}
	if cfg.DisableThermalThrottle {
		plat = plat.WithoutThrottle()
	}
	mgr, err := buildPolicy(cfg.Policy, plat)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(sim.Config{
		Platform:     plat,
		Manager:      mgr,
		Workloads:    workloads,
		Tick:         cfg.Tick,
		SamplePeriod: cfg.SamplePeriod,
		Seed:         cfg.Seed,
		Placer:       cfg.Sched,
	})
	if err != nil {
		return nil, fmt.Errorf("mobicore: %w", err)
	}
	return &Device{sim: s, plat: plat}, nil
}

// Run advances the simulation by d and returns the cumulative report.
func (d *Device) Run(dur time.Duration) (*Report, error) { return d.sim.Run(dur) }

// RunCtx is Run with cooperative cancellation: when ctx is done the
// simulation stops between ticks and returns the report accumulated so
// far alongside ctx's error, so a SIGINT still yields partial results.
func (d *Device) RunCtx(ctx context.Context, dur time.Duration) (*Report, error) {
	return d.sim.RunCtx(ctx, dur)
}

// RunUntilDone advances until every workload finishes or maxDur elapses.
func (d *Device) RunUntilDone(maxDur time.Duration) (*Report, bool, error) {
	return d.sim.RunUntilDone(maxDur)
}

// RunUntilDoneCtx is RunUntilDone with cooperative cancellation; like
// RunCtx it returns the partial report alongside ctx's error.
func (d *Device) RunUntilDoneCtx(ctx context.Context, maxDur time.Duration) (*Report, bool, error) {
	return d.sim.RunUntilDoneCtx(ctx, maxDur)
}

// Now returns the current simulated time.
func (d *Device) Now() time.Duration { return d.sim.Now() }

// WritePowerTraceCSV exports the sampled power-rail trace.
func (d *Device) WritePowerTraceCSV(w io.Writer) error { return d.sim.Monitor().WriteCSV(w) }

// WritePowerTraceJSON exports the trace and summary as JSON.
func (d *Device) WritePowerTraceJSON(w io.Writer) error { return d.sim.Monitor().WriteJSON(w) }

// PlatformName returns the device profile in use.
func (d *Device) PlatformName() string { return d.plat.Name }

// platformNames maps config names to profile constructors. The mapping is
// owned by the platform package (platform.Profiles) so the CLI aliases and
// platform.ByName display names cannot drift apart.
func platformNames() map[string]func() platform.Platform {
	return platform.Profiles()
}

// Platforms lists the built-in device profiles by canonical alias.
func Platforms() []string {
	m := platformNames()
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// lookupPlatform accepts both spellings of a profile: the CLI alias
// ("nexus5") and the display name ("Nexus 5").
func lookupPlatform(name string) (platform.Platform, error) {
	if name == "" {
		name = "nexus5"
	}
	p, err := platform.ByName(name)
	if err != nil {
		return platform.Platform{}, fmt.Errorf("mobicore: unknown platform %q (have %v)", name, Platforms())
	}
	return p, nil
}

// Policies lists the accepted policy names (the composable
// "<governor>+<hotplug>" forms are additional).
func Policies() []string { return stack.Names() }

// Hotplugs lists the hotplug policy names composable on the right of
// "<governor>+<hotplug>": load, mpdecision, offline, fixed-N. Governors on
// the left include the stock set plus schedutil and the pin-min/mid/max
// frequency-pinning governors.
func Hotplugs() []string { return stack.Hotplugs() }

// buildPolicy resolves a policy name against a platform; the shared
// resolution lives in internal/stack so the facade, the fleet driver, and
// the CLIs accept exactly the same names.
func buildPolicy(name string, plat platform.Platform) (policy.Manager, error) {
	mgr, err := stack.Build(name, plat)
	if err != nil {
		return nil, fmt.Errorf("mobicore: %w", err)
	}
	return mgr, nil
}

// Governors lists the available cpufreq governors.
func Governors() []string { return cpufreq.Names() }

// ExperimentIDs lists every reproducible table/figure id.
func ExperimentIDs() []string { return experiment.IDs() }

// ExperimentResult is a regenerated table or figure.
type ExperimentResult = experiment.Result

// ExperimentOptions scale experiment sessions; Scale 1.0 matches the
// paper's timings.
type ExperimentOptions = experiment.Options

// RunExperiment regenerates one paper item by id ("table1", "fig1" …
// "fig13", "static").
func RunExperiment(id string, opt ExperimentOptions) (ExperimentResult, error) {
	return experiment.Run(id, opt)
}

// Hz re-exports the frequency unit for API users.
type Hz = soc.Hz

// Frequency units.
const (
	KHz = soc.KHz
	MHz = soc.MHz
	GHz = soc.GHz
)
