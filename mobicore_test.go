package mobicore

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPlatformsAndPolicies(t *testing.T) {
	if len(Platforms()) != 8 {
		t.Errorf("platforms = %v, want 8 profiles (six thesis handsets + nexus6p + sd855)", Platforms())
	}
	if len(Policies()) != 4 {
		t.Errorf("policies = %v, want 4 named policies", Policies())
	}
	if len(Governors()) < 6 {
		t.Errorf("governors = %v, want at least the 6 stock ones", Governors())
	}
	if len(GameNames()) != 5 {
		t.Errorf("games = %v, want the thesis' 5", GameNames())
	}
}

func TestNewDeviceValidation(t *testing.T) {
	wl := BusyLoop(0.5, 2)
	if _, err := NewDevice(Config{}, nil...); err == nil {
		t.Error("no workloads accepted")
	}
	if _, err := NewDevice(Config{Platform: "iphone"}, wl); err == nil {
		t.Error("unknown platform accepted")
	}
	if _, err := NewDevice(Config{Policy: "warp-speed"}, wl); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewDevice(Config{Policy: "ondemand+bogus"}, wl); err == nil {
		t.Error("unknown hotplug accepted")
	}
}

func TestEveryNamedPolicyRuns(t *testing.T) {
	for _, policy := range Policies() {
		dev, err := NewDevice(Config{Policy: policy, Seed: 1}, BusyLoop(0.4, 4))
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		rep, err := dev.Run(2 * time.Second)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if rep.AvgPowerW <= 0 {
			t.Errorf("%s: no power measured", policy)
		}
	}
}

func TestComposedPolicyRuns(t *testing.T) {
	for _, policy := range []string{"interactive+load", "conservative+mpdecision", "userspace+fixed-2"} {
		dev, err := NewDevice(Config{Policy: policy, Seed: 1}, BusyLoop(0.4, 4))
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if _, err := dev.Run(time.Second); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
	}
}

func TestHeadlineClaim(t *testing.T) {
	run := func(policy string) float64 {
		dev, err := NewDevice(Config{Policy: policy, Seed: 9}, BusyLoop(0.3, 4))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := dev.Run(10 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep.AvgPowerW
	}
	def := run(PolicyAndroidDefault)
	mob := run(PolicyMobiCore)
	if mob >= def {
		t.Errorf("MobiCore (%.1f mW) should beat the default (%.1f mW)", mob*1000, def*1000)
	}
}

func TestGameWorkloadThroughFacade(t *testing.T) {
	g, err := NewGame("Subway Surf")
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(Config{Policy: PolicyMobiCore, Seed: 42}, g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if g.AvgFPS() <= 0 {
		t.Error("game rendered no frames")
	}
	if _, err := NewGame("Tetris"); err == nil {
		t.Error("unknown game accepted")
	}
}

func TestGeekBenchThroughFacade(t *testing.T) {
	gb, err := NewGeekBenchRun(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(Config{Policy: PolicyAndroidDefault, Seed: 1}, gb)
	if err != nil {
		t.Fatal(err)
	}
	rep, done, err := dev.RunUntilDone(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("benchmark did not finish")
	}
	score, err := gb.ScoreAfter(rep.Duration)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 {
		t.Error("no score")
	}
}

func TestTraceExport(t *testing.T) {
	dev, err := NewDevice(Config{Seed: 1}, BusyLoop(0.5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	var csv, js bytes.Buffer
	if err := dev.WritePowerTraceCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "seconds,watts") {
		t.Error("csv missing header")
	}
	if err := dev.WritePowerTraceJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), "average_watts") {
		t.Error("json missing fields")
	}
}

func TestRunExperimentThroughFacade(t *testing.T) {
	res, err := RunExperiment("static", ExperimentOptions{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "120") {
		t.Errorf("static anchor output missing 120 mW: %s", buf.String())
	}
	if _, err := RunExperiment("fig99", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentIDs()) != 20 {
		t.Errorf("experiment ids = %v, want 20 (16 paper items + biglittle + sustained + easplace + dayinlife)", ExperimentIDs())
	}
}

func TestDeterministicAcrossDevices(t *testing.T) {
	run := func() float64 {
		dev, err := NewDevice(Config{Policy: PolicyMobiCore, Seed: 77}, BusyLoop(0.6, 4))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := dev.Run(3 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep.EnergyJ
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed diverged: %v vs %v", a, b)
	}
}

func TestDisableThermalThrottle(t *testing.T) {
	dev, err := NewDevice(Config{
		Policy:                 "performance+mpdecision",
		DisableThermalThrottle: true,
		Seed:                   1,
	}, BusyLoop(1.0, 4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dev.Run(2 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ThermalCappedSec != 0 {
		t.Errorf("throttle-disabled run capped for %.1f s", rep.ThermalCappedSec)
	}
	if rep.MaxTempC < 40 {
		t.Errorf("unthrottled full blast peaked at %.1f C, want ≈42", rep.MaxTempC)
	}
}
