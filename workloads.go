package mobicore

import (
	"fmt"
	"io"
	"time"

	"mobicore/internal/games"
	"mobicore/internal/geekbench"
	"mobicore/internal/metrics"
	"mobicore/internal/platform"
	"mobicore/internal/scenario"
	"mobicore/internal/workload"
)

// BusyLoop builds the thesis' in-house kernel application (§3.1):
// spin-for-a-budget / idle-40 ms duty cycles across the given number of
// threads, sized so the duty at the Nexus 5's maximum frequency equals
// targetUtil. It panics only on programmer error; invalid arguments return
// an error from NewDevice instead via the Must-style wrapper below —
// callers needing explicit errors should use NewBusyLoop.
func BusyLoop(targetUtil float64, threads int) Workload {
	w, err := NewBusyLoop(targetUtil, threads)
	if err != nil {
		// The only failure modes are out-of-range arguments; surface
		// them as a deferred workload error through a nil-safe stub is
		// worse than failing loudly at construction.
		panic(fmt.Sprintf("mobicore.BusyLoop: %v", err))
	}
	return w
}

// NewBusyLoop is BusyLoop with an error return.
func NewBusyLoop(targetUtil float64, threads int) (Workload, error) {
	return workload.NewBusyLoop(workload.BusyLoopConfig{
		TargetUtil: targetUtil,
		Threads:    threads,
		RefFreq:    platform.Nexus5().Table.Max().Freq,
	})
}

// Scripted builds a piecewise-constant demand trace over nThreads threads.
type ScriptedStep = workload.Step

// NewScripted builds a scripted workload.
func NewScripted(name string, nThreads int, steps []ScriptedStep) (Workload, error) {
	return workload.NewScripted(name, nThreads, steps)
}

// ParseTraceCSV reads a "seconds,cycles_per_sec" demand trace (the
// record-on-device / replay-in-simulation format) into scripted steps.
func ParseTraceCSV(r io.Reader) ([]ScriptedStep, error) {
	return workload.ParseTraceCSV(r)
}

// WriteTraceCSV writes steps in the format ParseTraceCSV reads.
func WriteTraceCSV(w io.Writer, steps []ScriptedStep) error {
	return workload.WriteTraceCSV(w, steps)
}

// NewSinusoid builds a smoothly oscillating workload: meanCyclesPerSec
// demand ±amplitude with the given period, plus multiplicative noise.
func NewSinusoid(name string, nThreads int, meanCyclesPerSec, amplitude float64, period time.Duration, noise float64) (Workload, error) {
	return workload.NewSinusoid(name, nThreads, meanCyclesPerSec, amplitude, period, noise)
}

// Game is a frame-paced game workload with FPS accounting.
type Game = games.Game

// GameProfile describes a game's demand signature; see games.Profile.
type GameProfile = games.Profile

// GameNames lists the five evaluation titles of §6.
func GameNames() []string {
	profiles := games.All()
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// NewGame instantiates one of the five evaluation titles by name.
func NewGame(name string) (*Game, error) {
	for _, p := range games.All() {
		if p.Name == name {
			return games.New(p)
		}
	}
	return nil, fmt.Errorf("mobicore: unknown game %q (have %v)", name, GameNames())
}

// NewCustomGame instantiates a game from a custom profile.
func NewCustomGame(profile GameProfile) (*Game, error) { return games.New(profile) }

// GeekBenchRun is the synthetic benchmark suite as a live workload; run it
// with Device.RunUntilDone and read the score with ScoreAfter.
type GeekBenchRun = geekbench.Run

// NewGeekBenchRun builds a benchmark run over nThreads threads and the
// given iteration count per thread.
func NewGeekBenchRun(nThreads, iterations int) (*GeekBenchRun, error) {
	return geekbench.NewRun(geekbench.StandardSuite(), platform.Nexus5().Table, nThreads, iterations)
}

// ScenarioTrace is a replayable day-in-the-life scenario: a phase-visit
// sequence with per-segment demand and thread fan-out, serialized as JSONL
// (see scenario.TraceFormat). Traces round-trip byte-identically through
// WriteScenarioTrace / ReadScenarioTrace.
type ScenarioTrace = scenario.Trace

// ScenarioProfiles lists the built-in scenario profile names ("dayinlife",
// "standby").
func ScenarioProfiles() []string { return scenario.ProfileNames() }

// NewScenario builds a generator-mode scenario workload: the phase walk
// draws from the session's seeded rng, so every seed is a distinct
// deterministic synthetic user. The workload it returns also satisfies
// Workload; recover the walked trace for replay with RecordedScenario.
func NewScenario(profile string) (*scenario.Workload, error) {
	prof, err := scenario.ProfileByName(profile)
	if err != nil {
		return nil, err
	}
	return scenario.FromProfile(prof)
}

// NewScenarioReplay builds a workload replaying a stored scenario trace.
func NewScenarioReplay(tr ScenarioTrace) (*scenario.Workload, error) {
	return scenario.New(tr)
}

// GenerateScenarioTrace materializes a profile's seeded deterministic trace
// covering total simulated time — the export half of record/replay, used to
// pre-generate fleet sweeps of synthetic users.
func GenerateScenarioTrace(profile string, seed int64, total time.Duration) (ScenarioTrace, error) {
	prof, err := scenario.ProfileByName(profile)
	if err != nil {
		return ScenarioTrace{}, err
	}
	g, err := scenario.NewGenerator(prof, seed)
	if err != nil {
		return ScenarioTrace{}, err
	}
	return g.Generate(total), nil
}

// ReadScenarioTrace imports a JSONL scenario trace.
func ReadScenarioTrace(r io.Reader) (ScenarioTrace, error) { return scenario.ReadJSONL(r) }

// WriteScenarioTrace exports a scenario trace as JSONL.
func WriteScenarioTrace(w io.Writer, tr ScenarioTrace) error { return tr.WriteJSONL(w) }

// Summary re-exports the statistics accumulator used in reports.
type Summary = metrics.Summary

// Series re-exports the timestamped sample series used in reports.
type Series = metrics.Series
