package mobicore

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestBusyLoopPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BusyLoop(-1, 0) should panic; use NewBusyLoop for errors")
		}
	}()
	BusyLoop(-1, 0)
}

func TestNewBusyLoopErrors(t *testing.T) {
	if _, err := NewBusyLoop(1.5, 4); err == nil {
		t.Error("util > 1 accepted")
	}
	if _, err := NewBusyLoop(0.5, 0); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestNewSinusoidThroughFacade(t *testing.T) {
	wl, err := NewSinusoid("wave", 2, 1e9, 0.5, time.Second, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(Config{Policy: PolicyMobiCore, Seed: 5}, wl)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dev.Run(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExecutedCycles == 0 {
		t.Error("sinusoid executed nothing")
	}
}

func TestNewCustomGameValidation(t *testing.T) {
	if _, err := NewCustomGame(GameProfile{}); err == nil {
		t.Error("zero-value profile accepted")
	}
	prof := GameProfile{
		Name: "Test Title", TargetFPS: 30, FrameCycles: 1e8,
		ParallelFrac: 0.5, Workers: 1, MaxQueue: 3,
	}
	g, err := NewCustomGame(prof)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "Test Title" {
		t.Errorf("name = %q", g.Name())
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	steps := []ScriptedStep{
		{Duration: 500 * time.Millisecond, CyclesPerSec: 2e9},
		{Duration: time.Second, CyclesPerSec: 5e8},
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, steps); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(steps) {
		t.Fatalf("round trip = %d steps, want %d", len(parsed), len(steps))
	}
	wl, err := NewScripted("replay", 2, parsed)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice(Config{Seed: 1}, wl)
	if err != nil {
		t.Fatal(err)
	}
	rep, done, err := dev.RunUntilDone(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("replayed trace never finished")
	}
	// 2e9×0.5 + 5e8×1 = 1.5e9 cycles deposited and served.
	if rep.ExecutedCycles < 1.4e9 || rep.ExecutedCycles > 1.6e9 {
		t.Errorf("executed %.3g cycles, want ≈1.5e9", rep.ExecutedCycles)
	}
	if _, err := ParseTraceCSV(strings.NewReader("garbage")); err == nil {
		t.Error("garbage trace accepted")
	}
}

func TestSchedutilThroughFacade(t *testing.T) {
	dev, err := NewDevice(Config{Policy: "schedutil+load", Seed: 2}, BusyLoop(0.4, 4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := dev.Run(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Policy, "schedutil") {
		t.Errorf("policy = %q", rep.Policy)
	}
}
